/**
 * @file
 * Tests for the fault-tolerant job engine: failure isolation and
 * classification, retry with backoff, watchdog cancellation,
 * journal/resume equivalence, fail-fast, and the determinism
 * guarantee that any worker count produces byte-identical output.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/jobs/engine.h"
#include "sim/jobs/faults.h"
#include "sim/jobs/journal.h"
#include "trace/suites.h"

namespace moka {
namespace {

std::string
temp_path(const char *tag)
{
    return std::string(::testing::TempDir()) + "moka_jobs_" + tag +
           ".jsonl";
}

/** N trivial jobs with dense ids. */
std::vector<JobSpec>
trivial_jobs(std::size_t n)
{
    std::vector<JobSpec> jobs(n);
    for (std::size_t i = 0; i < n; ++i) {
        jobs[i].id = i;
        jobs[i].workload.name = "job" + std::to_string(i);
    }
    return jobs;
}

/** A cheap deterministic body: csv identifies the job. */
JobOutput
echo_body(const JobSpec &spec, JobContext &)
{
    JobOutput out;
    out.row.workload = spec.workload.name;
    out.row.suite = "test";
    out.row.scheme = "s";
    out.row.prefetcher = "p";
    out.aux = {static_cast<double>(spec.id) + 0.5};
    return out;
}

std::string
all_csv(const EngineReport &report)
{
    std::string out;
    for (const JobResult &res : report.results) {
        out += res.csv;
        out += '\n';
    }
    return out;
}

// ---------------------------------------------------------------------------
// Isolation + classification
// ---------------------------------------------------------------------------

TEST(JobEngine, ThrowingJobIsIsolated)
{
    EngineConfig cfg;
    JobEngine engine(cfg);
    const auto report = engine.run(
        trivial_jobs(5), [](const JobSpec &spec, JobContext &ctx) {
            if (spec.id == 2) {
                throw JobError(JobErrorCode::kTraceCorrupt,
                               "bad bytes in job 2");
            }
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(report.completed, 4u);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.skipped, 0u);
    EXPECT_EQ(report.results[2].status, JobStatus::kFailed);
    EXPECT_EQ(report.results[2].error, JobErrorCode::kTraceCorrupt);
    EXPECT_EQ(report.results[2].error_message, "bad bytes in job 2");
    EXPECT_FALSE(report.all_completed());
    // The other four kept their results.
    EXPECT_EQ(report.results[3].status, JobStatus::kCompleted);
    EXPECT_FALSE(report.results[3].csv.empty());
}

TEST(JobEngine, ForeignExceptionsAreClassified)
{
    EngineConfig cfg;
    JobEngine engine(cfg);
    const auto report = engine.run(
        trivial_jobs(3), [](const JobSpec &spec, JobContext &ctx) {
            if (spec.id == 0) {
                throw std::runtime_error("vanilla failure");
            }
            if (spec.id == 1) {
                throw std::bad_alloc();
            }
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(report.results[0].status, JobStatus::kFailed);
    EXPECT_EQ(report.results[0].error, JobErrorCode::kUnknown);
    EXPECT_EQ(report.results[1].status, JobStatus::kFailed);
    // bad_alloc is transient (kOom), so it was retried to exhaustion.
    EXPECT_EQ(report.results[1].error, JobErrorCode::kOom);
    EXPECT_EQ(report.results[1].attempts, cfg.max_attempts);
    EXPECT_EQ(report.results[2].status, JobStatus::kCompleted);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(JobEngine, TransientFailureRetriesThenSucceeds)
{
    EngineConfig cfg;
    cfg.max_attempts = 3;
    cfg.backoff_base_ms = 1;
    cfg.backoff_cap_ms = 2;
    JobEngine engine(cfg);
    const auto report = engine.run(
        trivial_jobs(1), [](const JobSpec &spec, JobContext &ctx) {
            if (ctx.attempt < 3) {
                throw JobError(JobErrorCode::kTimeout, "straggler");
            }
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(report.results[0].status, JobStatus::kCompleted);
    EXPECT_EQ(report.results[0].attempts, 3);
}

TEST(JobEngine, PermanentFailureIsNotRetried)
{
    EngineConfig cfg;
    cfg.max_attempts = 5;
    JobEngine engine(cfg);
    const auto report = engine.run(
        trivial_jobs(1), [](const JobSpec &, JobContext &) -> JobOutput {
            throw JobError(JobErrorCode::kConfigInvalid, "bad scheme");
        });
    EXPECT_EQ(report.results[0].status, JobStatus::kFailed);
    EXPECT_EQ(report.results[0].attempts, 1);
    EXPECT_EQ(report.results[0].error, JobErrorCode::kConfigInvalid);
}

TEST(JobErrors, TransiencyTaxonomy)
{
    EXPECT_TRUE(is_transient(JobErrorCode::kTimeout));
    EXPECT_TRUE(is_transient(JobErrorCode::kOom));
    EXPECT_FALSE(is_transient(JobErrorCode::kTraceCorrupt));
    EXPECT_FALSE(is_transient(JobErrorCode::kConfigInvalid));
    EXPECT_FALSE(is_transient(JobErrorCode::kAuditFailure));
    EXPECT_FALSE(is_transient(JobErrorCode::kUnknown));
    // A lost lease must not be retried locally: the peer that stole
    // the job owns it now (see shard.h).
    EXPECT_FALSE(is_transient(JobErrorCode::kLeaseLost));
    // Names round-trip through the journal format.
    for (const JobErrorCode code :
         {JobErrorCode::kTraceCorrupt, JobErrorCode::kConfigInvalid,
          JobErrorCode::kAuditFailure, JobErrorCode::kTimeout,
          JobErrorCode::kOom, JobErrorCode::kLeaseLost,
          JobErrorCode::kUnknown}) {
        EXPECT_EQ(job_error_code_from(to_string(code)), code);
    }
}

// ---------------------------------------------------------------------------
// Retry backoff jitter
// ---------------------------------------------------------------------------

TEST(Backoff, JitterStaysInUpperHalfAndIsDeterministic)
{
    EngineConfig cfg;
    cfg.backoff_base_ms = 100;
    cfg.backoff_cap_ms = 1000;
    for (std::size_t id = 0; id < 8; ++id) {
        for (int attempt = 1; attempt <= 6; ++attempt) {
            const std::uint64_t shift =
                static_cast<std::uint64_t>(attempt - 1);
            const std::uint64_t full =
                std::min<std::uint64_t>(1000, 100u << shift);
            const std::uint64_t d = backoff_delay_ms(cfg, id, attempt);
            EXPECT_GE(d, full / 2) << id << "/" << attempt;
            EXPECT_LE(d, full) << id << "/" << attempt;
            // Same (salt, id, attempt) always draws the same delay.
            EXPECT_EQ(d, backoff_delay_ms(cfg, id, attempt));
        }
    }
}

TEST(Backoff, DisabledJitterKeepsCappedExponential)
{
    EngineConfig cfg;
    cfg.backoff_base_ms = 100;
    cfg.backoff_cap_ms = 1000;
    cfg.backoff_jitter = false;
    const std::uint64_t expected[] = {100, 200, 400, 800, 1000, 1000};
    for (int attempt = 1; attempt <= 6; ++attempt) {
        EXPECT_EQ(backoff_delay_ms(cfg, 7, attempt),
                  expected[attempt - 1]);
    }
}

TEST(Backoff, SaltDecorrelatesShards)
{
    // Two shards retrying the same job on the same attempt must not
    // sleep in lockstep: different salts draw different delays for at
    // least some (id, attempt) pairs.
    EngineConfig a;
    a.backoff_base_ms = 64;
    a.backoff_cap_ms = 4096;
    EngineConfig b = a;
    b.jitter_salt = 0x9e3779b97f4a7c15ull;
    bool differs = false;
    for (std::size_t id = 0; id < 8 && !differs; ++id) {
        for (int attempt = 1; attempt <= 6 && !differs; ++attempt) {
            differs = backoff_delay_ms(a, id, attempt) !=
                      backoff_delay_ms(b, id, attempt);
        }
    }
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(JobEngine, WatchdogCancelsOverBudgetJob)
{
    EngineConfig cfg;
    cfg.max_attempts = 2;
    cfg.backoff_base_ms = 0;
    JobEngine engine(cfg);
    auto jobs = trivial_jobs(1);
    jobs[0].watchdog_steps = 100;
    const auto report =
        engine.run(jobs, [](const JobSpec &spec, JobContext &ctx) {
            // A runaway loop, observed through the cooperative hook
            // exactly as Machine::run would report it.
            for (std::uint64_t steps = 1; steps <= 100000; ++steps) {
                ctx.hook->on_tick(steps);
            }
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(report.results[0].status, JobStatus::kFailed);
    EXPECT_EQ(report.results[0].error, JobErrorCode::kTimeout);
    // Timeouts are transient: the budget was retried once.
    EXPECT_EQ(report.results[0].attempts, 2);
}

TEST(JobEngine, StalledWorkerTripsWallDeadline)
{
    EngineConfig cfg;
    cfg.max_attempts = 1;
    cfg.watchdog_wall_ms = 5;
    cfg.faults.enabled = true;
    cfg.faults.seed = 3;
    cfg.faults.stall_rate = 1.0;  // every attempt stalls
    cfg.faults.stall_ms = 50;
    JobEngine engine(cfg);
    const auto report = engine.run(
        trivial_jobs(1), [](const JobSpec &spec, JobContext &ctx) {
            for (std::uint64_t steps = 1; steps <= 8192; ++steps) {
                ctx.hook->on_tick(steps);
            }
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(report.results[0].status, JobStatus::kFailed);
    EXPECT_EQ(report.results[0].error, JobErrorCode::kTimeout);
}

// ---------------------------------------------------------------------------
// Determinism across worker counts (real simulations)
// ---------------------------------------------------------------------------

TEST(JobEngine, WorkerCountDoesNotChangeOutput)
{
    RunConfig run;
    run.warmup_insts = 500;
    run.measure_insts = 2000;
    const auto roster = sample(seen_workloads(), 3);
    const auto jobs =
        make_matrix(roster, {"discard", "dripper"}, {"berti"}, run);

    std::string reference;
    for (const std::size_t workers : {1u, 4u, 8u}) {
        EngineConfig cfg;
        cfg.workers = workers;
        JobEngine engine(cfg);
        const std::string csv = all_csv(engine.run(jobs, run_sim_job));
        if (reference.empty()) {
            reference = csv;
        } else {
            EXPECT_EQ(csv, reference) << "workers=" << workers;
        }
    }
    EXPECT_NE(reference.find("discard,berti"), std::string::npos);
}

TEST(JobEngine, InjectedFaultsAreScheduleIndependent)
{
    EngineConfig cfg;
    cfg.max_attempts = 2;
    cfg.backoff_base_ms = 0;
    cfg.faults.enabled = true;
    cfg.faults.seed = 11;
    cfg.faults.throw_rate = 0.5;
    cfg.faults.transient_rate = 0.0;  // every injected throw permanent

    std::vector<JobStatus> reference;
    for (const std::size_t workers : {1u, 4u, 8u}) {
        cfg.workers = workers;
        JobEngine engine(cfg);
        const auto report = engine.run(
            trivial_jobs(16), [](const JobSpec &spec, JobContext &ctx) {
                for (std::uint64_t steps = 1; steps <= 4096; ++steps) {
                    ctx.hook->on_tick(steps);
                }
                return echo_body(spec, ctx);
            });
        std::vector<JobStatus> statuses;
        for (const JobResult &res : report.results) {
            statuses.push_back(res.status);
        }
        if (reference.empty()) {
            reference = statuses;
            // The plan must actually produce both outcomes.
            EXPECT_GT(report.completed, 0u);
            EXPECT_GT(report.failed, 0u);
        } else {
            EXPECT_EQ(statuses, reference) << "workers=" << workers;
        }
    }
}

TEST(FaultInjector, DecisionsAreDeterministic)
{
    FaultPlan plan;
    plan.enabled = true;
    plan.seed = 42;
    plan.throw_rate = 0.5;
    plan.stall_rate = 0.25;
    const FaultInjector a(plan);
    const FaultInjector b(plan);
    bool saw_fault = false;
    for (std::size_t id = 0; id < 64; ++id) {
        for (int attempt = 1; attempt <= 3; ++attempt) {
            const auto da = a.decide(id, attempt);
            const auto db = b.decide(id, attempt);
            EXPECT_EQ(static_cast<int>(da.kind),
                      static_cast<int>(db.kind));
            EXPECT_EQ(da.at_tick, db.at_tick);
            EXPECT_EQ(da.transient, db.transient);
            saw_fault |= da.kind != FaultInjector::Decision::Kind::kNone;
        }
    }
    EXPECT_TRUE(saw_fault);
    // Disabled plan never faults.
    plan.enabled = false;
    const FaultInjector off(plan);
    for (std::size_t id = 0; id < 16; ++id) {
        EXPECT_EQ(static_cast<int>(off.decide(id, 1).kind),
                  static_cast<int>(FaultInjector::Decision::Kind::kNone));
    }
}

// ---------------------------------------------------------------------------
// Journal + resume
// ---------------------------------------------------------------------------

TEST(Journal, RecordRoundTripsThroughJsonl)
{
    JournalRecord rec;
    rec.job_id = 42;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 2;
    rec.csv = "w1,\"suite\",s,p,1,2,0.5\nsecond\tline\\with\\escapes";
    rec.aux = {1.0 / 3.0, -2.5e-17, 123456789.123456789};

    JournalRecord back;
    std::string error;
    ASSERT_TRUE(from_jsonl(to_jsonl(rec), back, &error)) << error;
    EXPECT_EQ(back.job_id, rec.job_id);
    EXPECT_EQ(back.status, rec.status);
    EXPECT_EQ(back.attempts, rec.attempts);
    EXPECT_EQ(back.csv, rec.csv);
    ASSERT_EQ(back.aux.size(), rec.aux.size());
    for (std::size_t i = 0; i < rec.aux.size(); ++i) {
        EXPECT_EQ(back.aux[i], rec.aux[i]);  // %.17g: exact round-trip
    }

    rec.status = JobStatus::kFailed;
    rec.error = JobErrorCode::kTimeout;
    rec.error_message = "watchdog: \"deadline\" exceeded\n";
    ASSERT_TRUE(from_jsonl(to_jsonl(rec), back, &error)) << error;
    EXPECT_EQ(back.status, JobStatus::kFailed);
    EXPECT_EQ(back.error, JobErrorCode::kTimeout);
    EXPECT_EQ(back.error_message, rec.error_message);
}

TEST(Journal, MalformedTrailingLineIsDropped)
{
    const std::string path = temp_path("torn");
    {
        std::ofstream os(path);
        JournalRecord rec;
        rec.job_id = 0;
        rec.status = JobStatus::kCompleted;
        rec.attempts = 1;
        rec.csv = "row0";
        os << to_jsonl(rec) << "\n";
        os << "{\"job\":1,\"status\":\"compl";  // torn mid-write
    }
    std::size_t skipped = 0;
    const auto records = Journal::load(path, &skipped);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].job_id, 0u);
    EXPECT_EQ(skipped, 1u);
    std::remove(path.c_str());
}

TEST(JobEngine, ResumeReproducesUninterruptedOutput)
{
    const std::string ref_journal = temp_path("ref");
    const std::string cut_journal = temp_path("cut");
    const std::string new_journal = temp_path("new");
    const auto jobs = trivial_jobs(8);

    EngineConfig cfg;
    cfg.journal_path = ref_journal;
    const std::string reference =
        all_csv(JobEngine(cfg).run(jobs, echo_body));

    // Simulate a crash: keep only the first 3 journal lines.
    {
        std::ifstream is(ref_journal);
        std::ofstream os(cut_journal);
        std::string line;
        for (int i = 0; i < 3 && std::getline(is, line); ++i) {
            os << line << '\n';
        }
    }

    int fresh_runs = 0;
    EngineConfig rcfg;
    rcfg.resume_path = cut_journal;
    rcfg.journal_path = new_journal;
    const auto resumed = JobEngine(rcfg).run(
        jobs, [&](const JobSpec &spec, JobContext &ctx) {
            ++fresh_runs;
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(all_csv(resumed), reference);
    EXPECT_EQ(fresh_runs, 5);  // 3 of 8 replayed from the journal
    EXPECT_EQ(resumed.resumed, 3u);
    EXPECT_EQ(resumed.completed, 8u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(resumed.results[i].from_journal);
    }
    // aux survives the journal round trip for resumed jobs.
    EXPECT_EQ(resumed.results[0].output.aux.size(), 1u);
    EXPECT_EQ(resumed.results[0].output.aux[0], 0.5);

    // The resumed run's journal is itself a complete resume point.
    EngineConfig r2cfg;
    r2cfg.resume_path = new_journal;
    const auto second = JobEngine(r2cfg).run(
        jobs, [](const JobSpec &, JobContext &) -> JobOutput {
            throw JobError(JobErrorCode::kUnknown,
                           "nothing should re-run");
        });
    EXPECT_EQ(all_csv(second), reference);
    EXPECT_EQ(second.resumed, 8u);

    std::remove(ref_journal.c_str());
    std::remove(cut_journal.c_str());
    std::remove(new_journal.c_str());
}

TEST(Journal, AppendStreamSurvivesReopen)
{
    const std::string path = temp_path("reopen");
    std::remove(path.c_str());
    {
        Journal journal(path);
        for (std::size_t id = 0; id < 3; ++id) {
            JournalRecord rec;
            rec.job_id = id;
            rec.status = JobStatus::kCompleted;
            rec.attempts = 1;
            rec.csv = "row" + std::to_string(id);
            journal.append(rec);
        }
        EXPECT_EQ(journal.compactions(), 0u);
        EXPECT_EQ(journal.disk_bytes(), journal.live_bytes());
    }
    Journal journal(path);
    EXPECT_EQ(journal.recovered().size(), 3u);
    JournalRecord rec;
    rec.job_id = 3;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    rec.csv = "row3";
    journal.append(rec);
    EXPECT_EQ(Journal::load(path).size(), 4u);
    std::remove(path.c_str());
}

TEST(Journal, TornTailIsRewrittenCleanBeforeAppends)
{
    const std::string path = temp_path("clean");
    {
        std::ofstream os(path);
        JournalRecord rec;
        rec.job_id = 0;
        rec.status = JobStatus::kCompleted;
        rec.attempts = 1;
        rec.csv = "row0";
        os << to_jsonl(rec) << "\n";
        os << "{\"job\":1,\"status\":\"compl";  // torn, no newline
    }
    Journal journal(path);
    EXPECT_EQ(journal.recovered().size(), 1u);
    JournalRecord rec;
    rec.job_id = 2;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    rec.csv = "row2";
    journal.append(rec);
    // The torn line is gone; the new record was not glued to it.
    std::size_t skipped = 99;
    const auto records = Journal::load(path, &skipped);
    EXPECT_EQ(skipped, 0u);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].job_id, 0u);
    EXPECT_EQ(records[1].job_id, 2u);
    std::remove(path.c_str());
}

TEST(Journal, CompactionKeepsNewestRecordPerJob)
{
    const std::string path = temp_path("compact");
    std::remove(path.c_str());
    Journal journal(path, /*compact_threshold_bytes=*/256);
    JournalRecord rec;
    rec.job_id = 7;
    rec.status = JobStatus::kFailed;
    rec.error = JobErrorCode::kTimeout;
    rec.error_message = "transient straggler";
    // Re-record the same job until superseded bytes trip compaction.
    for (int i = 0; i < 32; ++i) {
        rec.attempts = i + 1;
        journal.append(rec);
    }
    JournalRecord done;
    done.job_id = 7;
    done.status = JobStatus::kCompleted;
    done.attempts = 33;
    done.csv = "row7";
    journal.append(done);
    JournalRecord other;
    other.job_id = 8;
    other.status = JobStatus::kCompleted;
    other.attempts = 1;
    other.csv = "row8";
    journal.append(other);

    EXPECT_GE(journal.compactions(), 1u);
    // Dead bytes are bounded by the threshold: 33 superseded ~90-byte
    // records would otherwise leave ~3KB of garbage.
    EXPECT_LE(journal.disk_bytes() - journal.live_bytes(), 256u);
    EXPECT_LE(journal.disk_bytes(), 256u + journal.live_bytes());
    // The newest record per job survives every compaction: job 7's
    // completion supersedes all of its journaled failures.
    const auto records = Journal::load(path);
    EXPECT_LE(records.size(), 6u);  // 35 appends, mostly compacted away
    const JournalRecord *last7 = nullptr;
    const JournalRecord *last8 = nullptr;
    for (const JournalRecord &r : records) {
        if (r.job_id == 7) {
            last7 = &r;
        }
        if (r.job_id == 8) {
            last8 = &r;
        }
    }
    ASSERT_NE(last7, nullptr);
    EXPECT_EQ(last7->status, JobStatus::kCompleted);
    EXPECT_EQ(last7->attempts, 33);
    EXPECT_EQ(last7->csv, "row7");
    ASSERT_NE(last8, nullptr);
    EXPECT_EQ(last8->status, JobStatus::kCompleted);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checksums + injected write faults
// ---------------------------------------------------------------------------

TEST(Journal, ChecksumIgnoresAttemptsButNotResults)
{
    JournalRecord rec;
    rec.job_id = 3;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    rec.csv = "w,s,p,1.25";
    rec.aux = {0.5};

    JournalRecord rerun = rec;
    rerun.attempts = 4;  // a stolen job retried more times upstream
    EXPECT_EQ(record_checksum(rec), record_checksum(rerun));

    JournalRecord other = rec;
    other.csv = "w,s,p,1.26";
    EXPECT_NE(record_checksum(rec), record_checksum(other));
    other = rec;
    other.aux = {0.5000001};
    EXPECT_NE(record_checksum(rec), record_checksum(other));
    other = rec;
    other.status = JobStatus::kFailed;
    EXPECT_NE(record_checksum(rec), record_checksum(other));
}

TEST(Journal, TamperedLineIsRejectedByChecksum)
{
    JournalRecord rec;
    rec.job_id = 9;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    rec.csv = "workload9,suite,s,p,1.5";
    std::string line = to_jsonl(rec);
    EXPECT_NE(line.find("\"sum\":"), std::string::npos);

    // Flip one payload character: parse must fail even though the
    // line is still syntactically valid JSONL.
    const std::size_t at = line.find("workload9");
    ASSERT_NE(at, std::string::npos);
    line[at] = 'W';
    JournalRecord back;
    std::string error;
    EXPECT_FALSE(from_jsonl(line, back, &error));

    // A pre-checksum journal line (no "sum" field) still parses.
    std::string legacy = to_jsonl(rec);
    const std::size_t sum_at = legacy.rfind(",\"sum\":");
    ASSERT_NE(sum_at, std::string::npos);
    legacy.erase(sum_at, legacy.rfind('}') - sum_at);
    ASSERT_TRUE(from_jsonl(legacy, back, &error)) << error;
    EXPECT_EQ(back.csv, rec.csv);
}

TEST(Journal, InjectedShortWriteFailsAppendThenRetriesClean)
{
    const std::string path = temp_path("enospc");
    std::remove(path.c_str());
    Journal journal(path);
    JournalRecord rec;
    rec.job_id = 0;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    rec.csv = "row0";
    journal.append(rec);

    // Every write fails as a disk-full short write from here on.
    set_journal_write_gate(
        [](const std::string &, const std::string &) { return false; });
    rec.job_id = 1;
    rec.csv = "row1";
    EXPECT_THROW(journal.append(rec), JobError);
    set_journal_write_gate(nullptr);

    // The failed append tore the tail; the retry first rewrites the
    // file clean, so nothing is lost and nothing is glued together.
    journal.append(rec);
    std::size_t skipped = 99;
    const auto records = Journal::load(path, &skipped);
    EXPECT_EQ(skipped, 0u);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].job_id, 0u);
    EXPECT_EQ(records[1].job_id, 1u);
    EXPECT_EQ(records[1].csv, "row1");
    std::remove(path.c_str());
}

TEST(Journal, FailedCompactionIsDeferredNotFatal)
{
    const std::string path = temp_path("defer");
    std::remove(path.c_str());
    Journal journal(path, /*compact_threshold_bytes=*/256);

    // Replacement-file writes (write-to-temp + rename) fail; direct
    // appends succeed. Compaction must be deferred, never fatal.
    set_journal_write_gate(
        [&](const std::string &gated, const std::string &) {
            return gated == path;
        });
    JournalRecord rec;
    rec.job_id = 7;
    rec.status = JobStatus::kFailed;
    rec.error = JobErrorCode::kTimeout;
    rec.error_message = "transient straggler";
    for (int i = 0; i < 32; ++i) {
        rec.attempts = i + 1;
        EXPECT_NO_THROW(journal.append(rec));
    }
    EXPECT_EQ(journal.compactions(), 0u);
    // The journal is fully intact despite the blocked compactions.
    EXPECT_EQ(Journal::load(path).size(), 32u);

    // Disk pressure clears: the next superseding append compacts.
    set_journal_write_gate(nullptr);
    rec.attempts = 33;
    journal.append(rec);
    EXPECT_GE(journal.compactions(), 1u);
    const auto records = Journal::load(path);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].attempts, 33);
    std::remove(path.c_str());
}

TEST(Journal, TwoWritersOneFileInterleaveSafely)
{
    // Two Journal instances on one path model the misconfiguration
    // the shard layer avoids by design (per-shard journals): plain
    // interleaved appends must still all land and load cleanly, as
    // long as neither instance compacts (thresholds stay default).
    const std::string path = temp_path("two");
    std::remove(path.c_str());
    JournalRecord rec;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    {
        Journal a(path);
        rec.job_id = 0;
        rec.csv = "a0";
        a.append(rec);
        Journal b(path);  // opened later: sees a's record
        EXPECT_EQ(b.recovered().size(), 1u);
        rec.job_id = 1;
        rec.csv = "b1";
        b.append(rec);
        rec.job_id = 2;
        rec.csv = "a2";
        a.append(rec);
        rec.job_id = 3;
        rec.csv = "b3";
        b.append(rec);
    }
    std::size_t skipped = 99;
    const auto records = Journal::load(path, &skipped);
    EXPECT_EQ(skipped, 0u);
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(records[i].job_id, i);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Process-level fault injection
// ---------------------------------------------------------------------------

TEST(ProcessFaults, DecisionsAreDeterministicAndGated)
{
    ProcessFaultPlan plan;
    plan.enabled = true;
    plan.seed = 5;
    plan.kill_rate = 0.5;
    plan.write_fail_rate = 0.25;
    ProcessFaultInjector a(plan);
    ProcessFaultInjector b(plan);
    bool saw_kill = false;
    for (std::size_t job = 0; job < 64; ++job) {
        for (const ShardFaultPoint point :
             {ShardFaultPoint::kClaim, ShardFaultPoint::kRun,
              ShardFaultPoint::kCommit}) {
            const bool ka = a.should_kill(point, job);
            EXPECT_EQ(ka, b.should_kill(point, job));
            saw_kill |= ka;
        }
    }
    EXPECT_TRUE(saw_kill);
    bool saw_write_fail = false;
    for (std::uint64_t nth = 0; nth < 64; ++nth) {
        EXPECT_EQ(a.should_fail_write(nth), b.should_fail_write(nth));
        saw_write_fail |= a.should_fail_write(nth);
    }
    EXPECT_TRUE(saw_write_fail);

    plan.enabled = false;
    ProcessFaultInjector off(plan);
    for (std::size_t job = 0; job < 32; ++job) {
        EXPECT_FALSE(off.should_kill(ShardFaultPoint::kClaim, job));
        EXPECT_FALSE(off.should_fail_write(job));
    }
}

using ProcessFaultsDeathTest = ::testing::Test;

TEST(ProcessFaultsDeathTest, MaybeKillDeliversRealSigkill)
{
    // The honest crash: no exit handlers, no destructors — the shard
    // layer's lease recovery is built against exactly this signal.
    ProcessFaultPlan plan;
    plan.enabled = true;
    plan.kill_rate = 1.0;
    EXPECT_EXIT(
        {
            ProcessFaultInjector injector(plan);
            injector.maybe_kill(ShardFaultPoint::kCommit, 0);
            std::_Exit(0);  // unreachable when the kill fires
        },
        ::testing::KilledBySignal(SIGKILL), "");
}

// ---------------------------------------------------------------------------
// Cost-ordered dispatch
// ---------------------------------------------------------------------------

TEST(JobEngine, DispatchesByDescendingEstimatedCost)
{
    auto jobs = trivial_jobs(3);
    jobs[0].estimated_cost = 1.0;
    jobs[1].estimated_cost = 100.0;
    jobs[2].estimated_cost = 10.0;

    std::vector<std::size_t> execution_order;
    EngineConfig cfg;  // workers=1: execution order is observable
    const auto report = JobEngine(cfg).run(
        jobs, [&](const JobSpec &spec, JobContext &ctx) {
            execution_order.push_back(spec.id);
            return echo_body(spec, ctx);
        });
    const std::vector<std::size_t> expected = {1, 2, 0};
    EXPECT_EQ(execution_order, expected);
    // Results stay in ascending id order regardless of dispatch.
    ASSERT_EQ(report.results.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(report.results[i].id, i);
    }
}

TEST(JobEngine, EqualCostsPreserveIdOrder)
{
    std::vector<std::size_t> execution_order;
    EngineConfig cfg;
    JobEngine(cfg).run(trivial_jobs(4),
                       [&](const JobSpec &spec, JobContext &ctx) {
                           execution_order.push_back(spec.id);
                           return echo_body(spec, ctx);
                       });
    // Default cost 0.0 everywhere: stable sort keeps id order, so
    // pre-cost sweeps execute exactly as before.
    const std::vector<std::size_t> expected = {0, 1, 2, 3};
    EXPECT_EQ(execution_order, expected);
}

// ---------------------------------------------------------------------------
// Fail-fast
// ---------------------------------------------------------------------------

TEST(JobEngine, FailFastSkipsRemainingJobs)
{
    EngineConfig cfg;
    cfg.fail_fast = true;
    JobEngine engine(cfg);  // workers=1: deterministic skip count
    const auto report = engine.run(
        trivial_jobs(6), [](const JobSpec &spec, JobContext &ctx) {
            if (spec.id == 1) {
                throw JobError(JobErrorCode::kAuditFailure,
                               "invariant violated");
            }
            return echo_body(spec, ctx);
        });
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_EQ(report.skipped, 4u);
    for (std::size_t i = 2; i < 6; ++i) {
        EXPECT_EQ(report.results[i].status, JobStatus::kSkipped);
    }
    const std::string summary = report.summary();
    EXPECT_NE(summary.find("audit_failure"), std::string::npos);
    EXPECT_NE(summary.find("skipped"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI validation
// ---------------------------------------------------------------------------

using JobEngineDeathTest = ::testing::Test;

TEST(JobEngineDeathTest, MalformedNumericFlagIsUsageError)
{
    const char *argv1[] = {"bench", "--insts", "banana"};
    EXPECT_EXIT(parse_bench_args(3, const_cast<char **>(argv1)),
                ::testing::ExitedWithCode(2), "non-negative integer");
    const char *argv2[] = {"bench", "--jobs"};
    EXPECT_EXIT(parse_bench_args(2, const_cast<char **>(argv2)),
                ::testing::ExitedWithCode(2), "requires a value");
    const char *argv3[] = {"bench", "--inject-faults", "lots"};
    EXPECT_EXIT(parse_bench_args(3, const_cast<char **>(argv3)),
                ::testing::ExitedWithCode(2), "requires a number");
    const char *argv4[] = {"bench", "--insts", "123abc"};
    EXPECT_EXIT(parse_bench_args(3, const_cast<char **>(argv4)),
                ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(JobEngine, SchemeAndPrefetcherNamesAreValidated)
{
    EXPECT_THROW(scheme_by_name("not-a-scheme",
                                L1dPrefetcherKind::kBerti),
                 JobError);
    try {
        scheme_by_name("not-a-scheme", L1dPrefetcherKind::kBerti);
    } catch (const JobError &e) {
        EXPECT_EQ(e.code(), JobErrorCode::kConfigInvalid);
    }
    for (const std::string &name : known_scheme_names()) {
        EXPECT_NO_THROW(scheme_by_name(name, L1dPrefetcherKind::kBerti));
    }
    // An invalid prefetcher fails the job as kConfigInvalid.
    auto jobs = trivial_jobs(1);
    jobs[0].workload = seen_workloads().front();
    jobs[0].scheme = "discard";
    jobs[0].prefetcher = "psychic";
    jobs[0].run.warmup_insts = 100;
    jobs[0].run.measure_insts = 100;
    JobEngine engine((EngineConfig()));
    const auto report = engine.run(jobs, run_sim_job);
    EXPECT_EQ(report.results[0].status, JobStatus::kFailed);
    EXPECT_EQ(report.results[0].error, JobErrorCode::kConfigInvalid);
}

}  // namespace
}  // namespace moka
