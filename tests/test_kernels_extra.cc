/** @file Unit tests for the stencil and Zipf kernels. */
#include <gtest/gtest.h>

#include <map>

#include "trace/generators.h"

namespace moka {
namespace {

TEST(Stencil, FivePointsPerElement)
{
    StencilParams p;
    p.row_bytes = 1 << 10;
    p.rows = 8;
    KernelPtr k = make_stencil_kernel(p);
    Rng rng(1);
    // Collect one element's worth of accesses.
    std::vector<AccessKernel::Access> pts;
    for (int i = 0; i < 5; ++i) {
        pts.push_back(k->next(rng));
    }
    // Center element is pts[2]; verify the cross shape.
    const Addr c = pts[2].addr;
    EXPECT_EQ(pts[0].addr, c - p.row_bytes);   // north
    EXPECT_EQ(pts[1].addr, c - p.elem_bytes);  // west
    EXPECT_EQ(pts[3].addr, c + p.elem_bytes);  // east
    EXPECT_EQ(pts[4].addr, c + p.row_bytes);   // south
}

TEST(Stencil, DistinctPcPerPoint)
{
    KernelPtr k = make_stencil_kernel(StencilParams{});
    Rng rng(1);
    std::map<Addr, unsigned> pcs;
    for (int i = 0; i < 500; ++i) {
        ++pcs[k->next(rng).pc];
    }
    EXPECT_EQ(pcs.size(), 5u);
    for (const auto &[pc, count] : pcs) {
        EXPECT_EQ(count, 100u);
    }
}

TEST(Stencil, StreamsAdvanceSequentially)
{
    StencilParams p;
    p.row_bytes = 1 << 10;
    KernelPtr k = make_stencil_kernel(p);
    Rng rng(1);
    Addr prev_center = 0;
    for (int e = 0; e < 20; ++e) {
        std::vector<AccessKernel::Access> pts;
        for (int i = 0; i < 5; ++i) {
            pts.push_back(k->next(rng));
        }
        if (prev_center != 0) {
            EXPECT_EQ(pts[2].addr, prev_center + p.elem_bytes);
        }
        prev_center = pts[2].addr;
    }
}

TEST(Zipf, SkewConcentratesAccesses)
{
    ZipfParams p;
    p.footprint = 1 << 20;  // 16K blocks
    p.skew = 0.8;
    KernelPtr k = make_zipf_kernel(p);
    Rng rng(3);
    std::map<Addr, unsigned> counts;
    const unsigned n = 50000;
    for (unsigned i = 0; i < n; ++i) {
        ++counts[k->next(rng).addr & ~(kBlockSize - 1)];
    }
    // Top-16 blocks must absorb a disproportionate share.
    std::vector<unsigned> sorted;
    for (const auto &[addr, c] : counts) {
        sorted.push_back(c);
    }
    std::sort(sorted.rbegin(), sorted.rend());
    unsigned top16 = 0;
    for (std::size_t i = 0; i < 16 && i < sorted.size(); ++i) {
        top16 += sorted[i];
    }
    EXPECT_GT(double(top16) / n, 0.10);
    // But the tail exists: many distinct blocks touched.
    EXPECT_GT(counts.size(), 1000u);
}

TEST(Zipf, UniformWhenUnskewed)
{
    ZipfParams p;
    p.footprint = 1 << 18;  // 4K blocks
    p.skew = 0.0;
    KernelPtr k = make_zipf_kernel(p);
    Rng rng(3);
    std::map<Addr, unsigned> counts;
    for (unsigned i = 0; i < 40000; ++i) {
        ++counts[k->next(rng).addr];
    }
    // Near-uniform: the hash scramble maps a few ranks onto shared
    // blocks (it is not a permutation), so allow small pile-ups but
    // nothing resembling a Zipf head.
    unsigned max_count = 0;
    for (const auto &[addr, c] : counts) {
        max_count = std::max(max_count, c);
    }
    EXPECT_LT(max_count, 150u);
    EXPECT_GT(counts.size(), 2000u);
}

TEST(Zipf, StaysInFootprint)
{
    ZipfParams p;
    p.footprint = 1 << 20;
    KernelPtr k = make_zipf_kernel(p);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const Addr a = k->next(rng).addr;
        EXPECT_GE(a, p.base);
        EXPECT_LT(a, p.base + p.footprint);
    }
}

}  // namespace
}  // namespace moka
