// Layout-equivalence golden tests: the SoA data-layout work (cache
// tag arrays, flat filter weight arena, trace block decoder) must be
// metric-bit-identical to the original array-of-structs layouts.  The
// digests below were generated on the pre-refactor code by running
// each (scheme, workload) pair and hashing (a) the full architectural
// snapshot byte stream and (b) every RunMetrics field in declaration
// order.  Any layout change that perturbs a replacement decision, a
// filter sum, or a trace record stream shows up as a digest mismatch.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "filter/policies.h"
#include "sim/machine.h"
#include "sim/runner.h"
#include "trace/suites.h"
#include "trace/trace_io.h"

namespace moka {
namespace {

std::uint64_t
metrics_digest(const RunMetrics &m)
{
    std::uint64_t h = kFnv1aOffset;
    const auto mix = [&h](std::uint64_t v) {
        h = fnv1a_64(&v, sizeof(v), h);
    };
    mix(m.instructions);
    mix(m.cycles);
    const auto mix_stats = [&](const AccessStats &s) {
        mix(s.accesses);
        mix(s.misses);
    };
    mix_stats(m.l1i);
    mix_stats(m.l1d);
    mix_stats(m.l2);
    mix_stats(m.llc);
    mix_stats(m.dtlb);
    mix_stats(m.stlb);
    mix_stats(m.l2_walk);
    mix(m.l1d_writebacks);
    mix(m.l1d_pf_lookups);
    mix(m.pf_issued);
    mix(m.pf_useful);
    mix(m.pf_useless);
    mix(m.pgc_candidates);
    mix(m.pgc_issued);
    mix(m.pgc_useful);
    mix(m.pgc_useless);
    mix(m.pgc_dropped);
    mix(m.demand_walks);
    mix(m.spec_walks);
    mix(m.walk_refs);
    mix(m.dram_accesses);
    mix(m.branch_mispredicts);
    return h;
}

const WorkloadSpec &
spec_of(const std::string &name)
{
    static const std::vector<WorkloadSpec> roster = seen_workloads();
    for (const WorkloadSpec &s : roster) {
        if (s.name == name) {
            return s;
        }
    }
    throw std::runtime_error("unknown workload: " + name);
}

SchemeConfig
scheme_of(const std::string &name)
{
    if (name == "dripper") {
        return scheme_dripper(L1dPrefetcherKind::kBerti);
    }
    if (name == "permit") {
        return scheme_permit();
    }
    if (name == "ppf") {
        return scheme_ppf(false);
    }
    return scheme_discard();
}

struct GoldenRow {
    const char *scheme;
    const char *workload;
    std::uint64_t snapshot_digest;
    std::uint64_t metrics_digest;
};

// Generated on the pre-refactor layouts (PR 10 baseline).  Regenerate
// only when simulation semantics intentionally change, never for a
// data-layout refactor.
constexpr GoldenRow kGolden[] = {
    {"dripper", "parsec.stream.0", 0x4c89541ebfc0379aull, 0x7873dffa91c221dfull},
    {"permit", "parsec.stream.0", 0x0ff48c8e36ac7bd1ull, 0x7873dffa91c221dfull},
    {"ppf", "parsec.stream.0", 0x16e9b187c07ab289ull, 0xfad344a3d7cd329bull},
    {"discard", "parsec.stream.0", 0x9b478ff79a542d71ull, 0x513b0dc733f2ebcdull},
    {"dripper", "spec06.gather.1", 0x194cc0ba8bed26f7ull, 0x19092a40a62fbb3bull},
    {"permit", "spec06.gather.1", 0x703cf07326d9dda5ull, 0x19092a40a62fbb3bull},
    {"ppf", "spec06.gather.1", 0x925e54477b7e60fdull, 0xf361a57e8d9563afull},
    {"discard", "spec06.gather.1", 0x52861a29cbd873e8ull, 0x3941f4f8ee712a83ull},
};

constexpr GoldenRow kGoldenTrace[] = {
    {"dripper", "trace:spec06.hash.4", 0xbf01cefa1ef985ccull, 0x61bd44852deab3b6ull},
    {"permit", "trace:spec06.hash.4", 0xbdf1b39a136fce26ull, 0x61bd44852deab3b6ull},
};

constexpr GoldenRow kGoldenMix[] = {
    {"dripper", "mix2:stream+gather", 0x0be4ba2852cb655aull, 0x697123b20d884c63ull},
    {"discard", "mix2:stream+gather", 0xafb9444977186563ull, 0xa05e4b9e6186f1f3ull},
};

TEST(LayoutEquivalence, SingleCoreSchemesMatchGoldenDigests)
{
    for (const GoldenRow &row : kGolden) {
        SCOPED_TRACE(std::string(row.scheme) + " / " + row.workload);
        MachineConfig cfg =
            make_config(L1dPrefetcherKind::kBerti, scheme_of(row.scheme));
        std::vector<WorkloadPtr> wl;
        wl.push_back(make_workload(spec_of(row.workload)));
        Machine m(cfg, std::move(wl));
        m.run(100'000);
        m.start_measurement();
        m.run(200'000);
        const std::string snap = m.save_snapshot();
        EXPECT_EQ(row.snapshot_digest, fnv1a_64(snap.data(), snap.size()));
        EXPECT_EQ(row.metrics_digest, metrics_digest(m.measured(0)));
    }
}

TEST(LayoutEquivalence, TraceBackedRunMatchesGoldenDigests)
{
    // Record a deterministic slice once, replay through the trace
    // decoder for both schemes: covers the block-decoder read path
    // end to end, not just unit-level ring mechanics.
    const std::string path =
        ::testing::TempDir() + "layout_equivalence.trc";
    {
        WorkloadPtr src = make_workload(spec_of("spec06.hash.4"));
        record_trace(path, *src, 50'000);
    }
    for (const GoldenRow &row : kGoldenTrace) {
        SCOPED_TRACE(std::string(row.scheme) + " / " + row.workload);
        MachineConfig cfg =
            make_config(L1dPrefetcherKind::kBerti, scheme_of(row.scheme));
        std::vector<WorkloadPtr> wl;
        wl.push_back(open_trace(path));
        Machine m(cfg, std::move(wl));
        m.run(60'000);
        m.start_measurement();
        m.run(100'000);
        const std::string snap = m.save_snapshot();
        EXPECT_EQ(row.snapshot_digest, fnv1a_64(snap.data(), snap.size()));
        EXPECT_EQ(row.metrics_digest, metrics_digest(m.measured(0)));
    }
    std::remove(path.c_str());
}

TEST(LayoutEquivalence, TwoCoreMixMatchesGoldenDigests)
{
    for (const GoldenRow &row : kGoldenMix) {
        SCOPED_TRACE(std::string(row.scheme) + " / " + row.workload);
        MachineConfig cfg = default_config(2);
        cfg.l1d_prefetcher = L1dPrefetcherKind::kBerti;
        cfg.scheme = scheme_of(row.scheme);
        std::vector<WorkloadPtr> wl;
        wl.push_back(make_workload(spec_of("parsec.stream.0")));
        wl.push_back(make_workload(spec_of("spec06.gather.1")));
        Machine m(cfg, std::move(wl));
        m.run(50'000);
        m.start_measurement();
        m.run(100'000);
        const std::string snap = m.save_snapshot();
        EXPECT_EQ(row.snapshot_digest, fnv1a_64(snap.data(), snap.size()));
        std::uint64_t md = kFnv1aOffset;
        for (std::size_t i = 0; i < m.num_cores(); ++i) {
            const std::uint64_t d = metrics_digest(m.measured(i));
            md = fnv1a_64(&d, sizeof(d), md);
        }
        EXPECT_EQ(row.metrics_digest, md);
    }
}

}  // namespace
}  // namespace moka
