/** @file Integration tests: whole-machine simulation. */
#include <gtest/gtest.h>

#include "filter/policies.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {
namespace {

WorkloadSpec
pick(Family family)
{
    for (const WorkloadSpec &s : seen_workloads()) {
        if (s.family == family) {
            return s;
        }
    }
    ADD_FAILURE() << "family missing from roster";
    return seen_workloads().front();
}

RunConfig
quick_run()
{
    RunConfig run;
    run.warmup_insts = 20'000;
    run.measure_insts = 80'000;
    return run;
}

TEST(Machine, RunsRequestedInstructions)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard());
    const RunMetrics m =
        run_single(cfg, pick(Family::kStream), quick_run());
    EXPECT_EQ(m.instructions, 80'000u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.ipc(), 0.0);
    EXPECT_LT(m.ipc(), 6.0);  // cannot beat the core width
}

TEST(Machine, DeterministicAcrossRuns)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti,
                    scheme_dripper(L1dPrefetcherKind::kBerti));
    const WorkloadSpec spec = pick(Family::kCsr);
    const RunMetrics a = run_single(cfg, spec, quick_run());
    const RunMetrics b = run_single(cfg, spec, quick_run());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1d.misses, b.l1d.misses);
    EXPECT_EQ(a.pgc_issued, b.pgc_issued);
    EXPECT_EQ(a.pgc_dropped, b.pgc_dropped);
}

TEST(Machine, DiscardNeverWalksSpeculatively)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard());
    const RunMetrics m =
        run_single(cfg, pick(Family::kStream), quick_run());
    EXPECT_EQ(m.spec_walks, 0u);
    EXPECT_EQ(m.pgc_issued, 0u);
    EXPECT_GT(m.pgc_dropped, 0u);  // candidates existed and were dropped
}

TEST(Machine, PermitIssuesAndWalks)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, scheme_permit());
    const RunMetrics m =
        run_single(cfg, pick(Family::kStream), quick_run());
    EXPECT_GT(m.pgc_issued, 0u);
    EXPECT_GT(m.spec_walks, 0u);
    EXPECT_EQ(m.pgc_dropped, 0u);
}

TEST(Machine, DiscardPtwNeverWalksButMayIssue)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard_ptw());
    const RunMetrics m =
        run_single(cfg, pick(Family::kStream), quick_run());
    EXPECT_EQ(m.spec_walks, 0u);
    // TLB-resident crossings still issue.
    EXPECT_GT(m.pgc_issued + m.pgc_dropped, 0u);
}

TEST(Machine, TileIsHostileStreamIsFriendly)
{
    const RunConfig run = quick_run();
    const WorkloadSpec tile = pick(Family::kTile);
    const RunMetrics tile_permit = run_single(
        make_config(L1dPrefetcherKind::kBerti, scheme_permit()), tile,
        run);
    // Page-cross prefetches on the tile pattern are useless.
    EXPECT_GT(tile_permit.pgc_useless, tile_permit.pgc_useful);

    const WorkloadSpec stream = pick(Family::kStream);
    const RunMetrics stream_permit = run_single(
        make_config(L1dPrefetcherKind::kBerti, scheme_permit()), stream,
        run);
    EXPECT_GT(stream_permit.pgc_useful, stream_permit.pgc_useless);
}

TEST(Machine, MeasuredRegionExcludesWarmup)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard());
    std::vector<WorkloadPtr> w;
    w.push_back(make_workload(pick(Family::kStream)));
    Machine machine(cfg, std::move(w));
    machine.run(50'000);
    machine.start_measurement();
    machine.run(50'000);
    const RunMetrics m = machine.measured(0);
    EXPECT_EQ(m.instructions, 50'000u);
    // Cumulative metrics cover both regions.
    EXPECT_EQ(machine.metrics(0).instructions, 100'000u);
}

TEST(Machine, LargePagesReduceWalkLevels)
{
    MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard());
    const WorkloadSpec spec = pick(Family::kGather);
    const RunMetrics small = run_single(cfg, spec, quick_run());
    cfg.vmem.large_page_fraction = 1.0;
    const RunMetrics large = run_single(cfg, spec, quick_run());
    // 2MB pages collapse TLB pressure for the same access pattern.
    EXPECT_LT(large.stlb_mpki(), small.stlb_mpki() * 0.7 + 0.1);
}

TEST(Machine, IsoStorageEnlargesPrefetcher)
{
    // Smoke: ISO Storage must run and permit page crossing.
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kIpcp, scheme_iso_storage());
    const RunMetrics m =
        run_single(cfg, pick(Family::kStream), quick_run());
    EXPECT_GT(m.pf_issued, 0u);
}

TEST(Machine, DripperStaysCloseToBestStatic)
{
    // Functional sanity on one friendly and one hostile workload:
    // DRIPPER must not sit below both statics on either.
    const RunConfig run{50'000, 200'000};
    for (Family fam : {Family::kStream, Family::kTile}) {
        const WorkloadSpec spec = pick(fam);
        const double base =
            run_single(make_config(L1dPrefetcherKind::kBerti,
                                   scheme_discard()),
                       spec, run)
                .ipc();
        const double permit =
            run_single(make_config(L1dPrefetcherKind::kBerti,
                                   scheme_permit()),
                       spec, run)
                .ipc();
        const double dripper =
            run_single(make_config(L1dPrefetcherKind::kBerti,
                                   scheme_dripper(
                                       L1dPrefetcherKind::kBerti)),
                       spec, run)
                .ipc();
        EXPECT_GT(dripper, std::min(base, permit) * 0.995)
            << "family " << static_cast<int>(fam);
    }
}

TEST(Machine, L2PrefetcherFillsL2)
{
    MachineConfig cfg =
        make_config(L1dPrefetcherKind::kNextLine, scheme_discard());
    cfg.l2_prefetcher = L2PrefetcherKind::kSpp;
    const RunMetrics with = run_single(cfg, pick(Family::kStream),
                                       quick_run());
    EXPECT_GT(with.instructions, 0u);  // smoke: SPP path executes
}

}  // namespace
}  // namespace moka
