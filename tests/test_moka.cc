/** @file Unit tests for the MokaFilter (prediction + training). */
#include <gtest/gtest.h>

#include "filter/moka.h"
#include "filter/policies.h"

namespace moka {
namespace {

MokaConfig
simple_config()
{
    MokaConfig cfg;
    cfg.name = "test";
    cfg.program_features = {ProgramFeatureId::kDelta};
    cfg.system_features = {
        default_system_feature(SystemFeatureId::kStlbMpki)};
    cfg.threshold.adaptive = false;
    cfg.threshold.t_static = 2;
    return cfg;
}

/** Simulate one issued PGC prefetch with outcome @p useful. */
void
resolve(MokaFilter &f, Addr target, bool useful)
{
    // Identity translation for tests: the physical copy shares the raw
    // bits but must be re-tagged explicitly to cross the seam.
    f.on_pgc_issued(VirtAddr{target}, PhysAddr{target});
    if (useful) {
        f.on_pgc_first_use(PhysAddr{target});
    } else {
        f.on_pgc_eviction(PhysAddr{target}, false);
    }
}

TEST(MokaFilter, ColdFilterDiscardsAtPositiveThreshold)
{
    MokaFilter f(simple_config());
    SystemSnapshot snap;
    snap.stlb_mpki = 100.0;  // deactivates the system feature
    EXPECT_FALSE(f.permit(0x400100, VirtAddr{0x100000}, 5,
                          VirtAddr{0x100000 + 5 * kBlockSize}, snap));
}

TEST(MokaFilter, VubFalseNegativeRetrains)
{
    MokaFilter f(simple_config());
    SystemSnapshot snap;
    snap.stlb_mpki = 100.0;
    const Addr target = 0x100000 + 5 * kBlockSize;
    // Discards insert into vUB; the demand miss on the same block
    // trains positively. Repeat until the weight crosses T_a = 2.
    int needed = 0;
    for (int i = 0; i < 10; ++i) {
        if (f.permit(0x400100, VirtAddr{0x100000}, 5, VirtAddr{target},
                     snap)) {
            break;
        }
        f.on_l1d_demand_miss(VirtAddr{target});
        ++needed;
    }
    EXPECT_TRUE(
        f.permit(0x400100, VirtAddr{0x100000}, 5, VirtAddr{target}, snap));
    EXPECT_GE(needed, 2);
}

TEST(MokaFilter, NegativeTrainingShutsDelta)
{
    MokaConfig cfg = simple_config();
    cfg.threshold.t_static = -4;  // start permissive
    MokaFilter f(cfg);
    SystemSnapshot snap;
    snap.stlb_mpki = 100.0;
    // Deliver useless outcomes for delta 7 until it is rejected.
    bool rejected = false;
    for (int i = 0; i < 30 && !rejected; ++i) {
        const Addr target = 0x200000 + Addr(i) * kPageSize;
        if (f.permit(0x400100, VirtAddr{0x200000}, 7, VirtAddr{target},
                     snap)) {
            resolve(f, target, /*useful=*/false);
        } else {
            rejected = true;
        }
    }
    EXPECT_TRUE(rejected);
    // A different delta is unaffected (separate weight entry).
    EXPECT_TRUE(f.permit(0x400100, VirtAddr{0x200000}, 33,
                         VirtAddr{0x200000 + 33 * kBlockSize}, snap));
}

TEST(MokaFilter, SystemFeatureJoinsOnlyWhenActive)
{
    MokaConfig cfg;
    cfg.name = "sf-only";
    cfg.system_features = {
        default_system_feature(SystemFeatureId::kStlbMissRate)};
    cfg.threshold.adaptive = false;
    cfg.threshold.t_static = 2;
    MokaFilter f(cfg);

    // Train the system feature positive during high-miss-rate phases.
    SystemSnapshot high;
    high.stlb_miss_rate = 0.9;
    for (int i = 0; i < 10; ++i) {
        const Addr target = 0x300000 + Addr(i) * kPageSize;
        if (f.permit(0x1, VirtAddr{0x300000}, 3, VirtAddr{target}, high)) {
            resolve(f, target, true);
        } else {
            f.on_l1d_demand_miss(VirtAddr{target});
        }
    }
    EXPECT_TRUE(f.permit(0x1, VirtAddr{0x300000}, 3,
                         VirtAddr{0x300000 + 64 * kBlockSize}, high));
    // In a low-miss-rate phase the feature is inactive: the sum is 0
    // and the request is discarded again.
    SystemSnapshot low;
    low.stlb_miss_rate = 0.0;
    EXPECT_FALSE(f.permit(0x1, VirtAddr{0x300000}, 3,
                          VirtAddr{0x300000 + 65 * kBlockSize}, low));
}

TEST(MokaFilter, AbandonClearsPending)
{
    MokaConfig cfg = simple_config();
    cfg.threshold.t_static = -4;
    MokaFilter f(cfg);
    SystemSnapshot snap;
    snap.stlb_mpki = 100.0;
    ASSERT_TRUE(f.permit(0x1, VirtAddr{0x100000}, 4,
                         VirtAddr{0x100000 + 4 * kBlockSize}, snap));
    f.on_pgc_abandoned();
    // A later issue for a different target must not inherit state
    // (would assert in debug builds otherwise).
    ASSERT_TRUE(f.permit(0x1, VirtAddr{0x200000}, 4,
                         VirtAddr{0x200000 + 4 * kBlockSize}, snap));
    f.on_pgc_issued(VirtAddr{0x200000 + 4 * kBlockSize},
                    PhysAddr{0x77000});
    f.on_pgc_first_use(PhysAddr{0x77000});
    SUCCEED();
}

TEST(MokaFilter, DisabledPhaseStillLearnsThroughVub)
{
    MokaConfig cfg = simple_config();
    cfg.threshold.adaptive = true;
    MokaFilter f(cfg);
    SystemSnapshot extreme;
    extreme.llc_miss_rate = 0.99;
    extreme.llc_mpki = 500.0;
    extreme.stlb_mpki = 100.0;
    f.on_interval(extreme);  // disables PGC
    const Addr target = 0x500000 + 6 * kBlockSize;
    EXPECT_FALSE(f.permit(0x1, VirtAddr{0x500000}, 6, VirtAddr{target},
                          extreme));
    // The discarded request still landed in vUB: a demand miss trains.
    f.on_l1d_demand_miss(VirtAddr{target});
    // Pressure subsides; a few more vUB rounds flip the decision.
    SystemSnapshot calm;
    calm.stlb_mpki = 100.0;
    f.on_interval(calm);
    for (int i = 0; i < 10; ++i) {
        if (f.permit(0x1, VirtAddr{0x500000}, 6, VirtAddr{target}, calm)) {
            SUCCEED();
            return;
        }
        f.on_l1d_demand_miss(VirtAddr{target});
    }
    FAIL() << "vUB training never re-enabled page-cross prefetching";
}

TEST(MokaFilter, StorageBitsMatchTableThree)
{
    // DRIPPER: 1024x5b weights + 2x5b system + 4x48b vUB + 128x48b pUB
    // = 1433.75 bytes ~ 1.44KB (paper's Table III).
    const FilterPtr f = make_dripper(L1dPrefetcherKind::kBerti);
    const double kb = double(f->storage_bits()) / 8.0 / 1000.0;
    EXPECT_NEAR(kb, 1.44, 0.02);
}

TEST(MokaFilter, DripperSfHasNoProgramTables)
{
    MokaConfig cfg = dripper_config(L1dPrefetcherKind::kBerti);
    cfg.program_features.clear();
    MokaFilter f(cfg);
    // Storage = 2x5b system + buffers only.
    EXPECT_EQ(f.storage_bits(), 2u * 5u + 4u * 48u + 128u * 48u);
}

}  // namespace
}  // namespace moka
