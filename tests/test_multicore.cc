/** @file Integration tests for the multi-core runner. */
#include <gtest/gtest.h>

#include "sim/multicore.h"

namespace moka {
namespace {

TEST(Multicore, MixGenerationDeterministic)
{
    const auto roster = seen_workloads();
    const auto a = make_mixes(roster, 5, 4, 11);
    const auto b = make_mixes(roster, 5, 4, 11);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        ASSERT_EQ(a[i].size(), 4u);
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_EQ(a[i][c].name, b[i][c].name);
        }
    }
}

TEST(Multicore, BaselineSpeedupIsUnity)
{
    const auto roster = sample(seen_workloads(), 8);
    const auto mixes = make_mixes(roster, 1, 2, 3);
    MulticoreConfig mc;
    mc.cores = 2;
    mc.warmup_insts = 10'000;
    mc.measure_insts = 40'000;
    IsolationCache iso;
    const double s = weighted_speedup(
        L1dPrefetcherKind::kBerti, scheme_discard(), scheme_discard(),
        mixes[0], mc, iso);
    EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Multicore, AllCoresReachBudget)
{
    MachineConfig cfg = default_config(2);
    cfg.scheme = scheme_discard();
    std::vector<WorkloadPtr> w;
    const auto roster = seen_workloads();
    w.push_back(make_workload(roster[0]));
    w.push_back(make_workload(roster[50]));
    Machine machine(cfg, std::move(w));
    machine.run(30'000);
    EXPECT_GE(machine.metrics(0).instructions, 30'000u);
    EXPECT_GE(machine.metrics(1).instructions, 30'000u);
}

TEST(Multicore, IsolationCacheReused)
{
    const auto roster = sample(seen_workloads(), 4);
    std::vector<WorkloadSpec> mix = {roster[0], roster[0]};
    MulticoreConfig mc;
    mc.cores = 2;
    mc.warmup_insts = 5'000;
    mc.measure_insts = 20'000;
    IsolationCache iso;
    weighted_ipc(L1dPrefetcherKind::kBerti, scheme_discard(), mix, mc,
                 iso);
    // One unique workload in the mix: exactly one isolation entry.
    EXPECT_EQ(iso.size(), 1u);
}

TEST(Multicore, SharedLlcContentionVisible)
{
    // The same workload runs slower per-core in a 2-core machine than
    // alone on the same configuration (shared LLC + DRAM).
    const WorkloadSpec spec = [] {
        for (const WorkloadSpec &s : seen_workloads()) {
            if (s.family == Family::kStream) {
                return s;
            }
        }
        return seen_workloads().front();
    }();
    MachineConfig cfg = default_config(2);
    cfg.scheme = scheme_discard();

    std::vector<WorkloadPtr> solo;
    solo.push_back(make_workload(spec));
    Machine alone(cfg, std::move(solo));
    alone.run(10'000);
    alone.start_measurement();
    alone.run(40'000);

    std::vector<WorkloadPtr> pair;
    pair.push_back(make_workload(spec));
    pair.push_back(make_workload(spec));
    Machine both(cfg, std::move(pair));
    both.run(10'000);
    both.start_measurement();
    both.run(40'000);

    EXPECT_LE(both.measured(0).ipc(), alone.measured(0).ipc() * 1.02);
}

}  // namespace
}  // namespace moka
