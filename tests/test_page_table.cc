/** @file Unit tests for the radix page table + frame allocator. */
#include <gtest/gtest.h>

#include <set>

#include "vmem/page_table.h"

namespace moka {
namespace {

VmemConfig
config(double large_fraction = 0.0, std::uint64_t seed = 1)
{
    VmemConfig cfg;
    cfg.phys_bytes = Addr{1} << 30;
    cfg.large_page_fraction = large_fraction;
    cfg.seed = seed;
    return cfg;
}

TEST(PageTable, TranslationIsStable)
{
    PageTable pt(config());
    const VirtAddr va{0x12345678};
    const Translation t1 = pt.translate(va);
    const Translation t2 = pt.translate(va);
    EXPECT_EQ(t1.paddr, t2.paddr);
    EXPECT_FALSE(t1.large);
}

TEST(PageTable, OffsetPreserved)
{
    PageTable pt(config());
    const Translation t = pt.translate(VirtAddr{0xABC123});
    EXPECT_EQ(page_offset(t.paddr), page_offset(Addr{0xABC123}));
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    PageTable pt(config());
    std::set<Addr> frames;
    for (Addr p = 0; p < 500; ++p) {
        const Translation t = pt.translate(VirtAddr{0x40000000 + p * kPageSize});
        frames.insert(page_addr(t.paddr).raw());
    }
    EXPECT_EQ(frames.size(), 500u);
}

TEST(PageTable, ContiguityIsDestroyed)
{
    // Randomized allocation: adjacent virtual pages should rarely be
    // adjacent physically (the VIPT-prefetching premise).
    PageTable pt(config());
    unsigned adjacent = 0;
    PhysAddr prev = pt.translate(VirtAddr{0x40000000}).paddr;
    for (Addr p = 1; p < 200; ++p) {
        const PhysAddr cur = pt.translate(VirtAddr{0x40000000 + p * kPageSize}).paddr;
        if (page_addr(cur) == page_addr(prev) + kPageSize) {
            ++adjacent;
        }
        prev = cur;
    }
    EXPECT_LT(adjacent, 5u);
}

TEST(PageTable, WalkLevelsFor4K)
{
    PageTable pt(config());
    std::array<PhysAddr, 5> addrs;
    EXPECT_EQ(pt.walk_addresses(VirtAddr{0x40000000}, addrs), 5u);
    // Each PTE address must be 8-byte aligned and inside a 4KB table.
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(addrs[i].raw() % 8, 0u);
    }
}

TEST(PageTable, WalkLevelsFor2M)
{
    PageTable pt(config(1.0));
    std::array<PhysAddr, 5> addrs;
    EXPECT_EQ(pt.walk_addresses(VirtAddr{0x40000000}, addrs), 4u);
    const Translation t = pt.translate(VirtAddr{0x40000000});
    EXPECT_TRUE(t.large);
    // 2MB-aligned frame.
    EXPECT_EQ(large_page_offset(t.paddr),
              Addr{0x40000000} & (kLargePageSize - 1));
}

TEST(PageTable, AdjacentPagesShareLeafTable)
{
    PageTable pt(config());
    std::array<PhysAddr, 5> a, b;
    pt.walk_addresses(VirtAddr{0x40000000}, a);
    pt.walk_addresses(VirtAddr{0x40000000 + kPageSize}, b);
    // Same PT leaf page, consecutive entries.
    EXPECT_EQ(page_addr(a[4]), page_addr(b[4]));
    EXPECT_EQ(b[4], a[4] + 8);
    // Upper levels identical.
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[3], b[3]);
}

TEST(PageTable, LargeRegionDecisionDeterministic)
{
    PageTable pt1(config(0.5, 99));
    PageTable pt2(config(0.5, 99));
    for (Addr r = 0; r < 64; ++r) {
        const VirtAddr va{r * kLargePageSize};
        EXPECT_EQ(pt1.is_large_region(va), pt2.is_large_region(va));
    }
}

TEST(PageTable, LargeFractionRoughlyHonored)
{
    PageTable pt(config(0.5, 7));
    unsigned large = 0;
    const unsigned n = 400;
    for (Addr r = 0; r < n; ++r) {
        large += pt.is_large_region(VirtAddr{r * kLargePageSize}) ? 1 : 0;
    }
    EXPECT_GT(large, n / 3);
    EXPECT_LT(large, 2 * n / 3);
}

TEST(PageTable, MappedPagesCounts)
{
    PageTable pt(config());
    EXPECT_EQ(pt.mapped_pages(), 0u);
    pt.translate(VirtAddr{0x1000});
    pt.translate(VirtAddr{0x1100});  // same page
    pt.translate(VirtAddr{0x2000});
    EXPECT_EQ(pt.mapped_pages(), 2u);
}

}  // namespace
}  // namespace moka
