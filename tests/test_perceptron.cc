/** @file Unit tests for the hashed-perceptron weight table. */
#include <gtest/gtest.h>

#include <set>

#include "filter/perceptron.h"

namespace moka {
namespace {

TEST(WeightTable, StartsAtZero)
{
    WeightTable wt(1024, 5);
    for (std::uint32_t i = 0; i < 1024; i += 137) {
        EXPECT_EQ(wt.weight_at(i), 0);
    }
}

TEST(WeightTable, IndexStableAndBounded)
{
    WeightTable wt(1024, 5);
    const std::uint32_t idx = wt.index_of(0xDEADBEEF);
    EXPECT_EQ(idx, wt.index_of(0xDEADBEEF));
    EXPECT_LT(idx, 1024u);
}

TEST(WeightTable, TrainingSaturates)
{
    WeightTable wt(64, 5);
    const std::uint32_t idx = wt.index_of(42);
    for (int i = 0; i < 100; ++i) {
        wt.increment(idx);
    }
    EXPECT_EQ(wt.weight_at(idx), 15);
    for (int i = 0; i < 200; ++i) {
        wt.decrement(idx);
    }
    EXPECT_EQ(wt.weight_at(idx), -16);
}

TEST(WeightTable, StorageBits)
{
    WeightTable wt(1024, 5);
    EXPECT_EQ(wt.storage_bits(), 1024u * 5u);
    EXPECT_EQ(wt.entries(), 1024u);
}

TEST(WeightTable, DistinctValuesSpread)
{
    WeightTable wt(512, 5);
    std::set<std::uint32_t> indexes;
    for (std::uint64_t v = 0; v < 256; ++v) {
        indexes.insert(wt.index_of(v << 12));
    }
    EXPECT_GT(indexes.size(), 180u);
}

}  // namespace
}  // namespace moka
