/** @file Unit tests for scheme/policy factories. */
#include <gtest/gtest.h>

#include "filter/policies.h"

namespace moka {
namespace {

TEST(Policies, StaticSchemes)
{
    EXPECT_EQ(scheme_permit().policy, PgcPolicy::kPermit);
    EXPECT_EQ(scheme_discard().policy, PgcPolicy::kDiscard);
    EXPECT_EQ(scheme_discard_ptw().policy, PgcPolicy::kDiscardPtw);
    EXPECT_TRUE(scheme_iso_storage().iso_storage);
    EXPECT_EQ(scheme_iso_storage().policy, PgcPolicy::kPermit);
}

TEST(Policies, DripperTableTwoFeatures)
{
    // Table II: Berti uses Delta; BOP and IPCP use PC^Delta; all use
    // the two sTLB system features.
    const MokaConfig berti = dripper_config(L1dPrefetcherKind::kBerti);
    ASSERT_EQ(berti.program_features.size(), 1u);
    EXPECT_EQ(berti.program_features[0], ProgramFeatureId::kDelta);

    for (L1dPrefetcherKind k :
         {L1dPrefetcherKind::kBop, L1dPrefetcherKind::kIpcp}) {
        const MokaConfig cfg = dripper_config(k);
        ASSERT_EQ(cfg.program_features.size(), 1u);
        EXPECT_EQ(cfg.program_features[0], ProgramFeatureId::kPcXorDelta);
    }

    ASSERT_EQ(berti.system_features.size(), 2u);
    EXPECT_EQ(berti.system_features[0].id, SystemFeatureId::kStlbMpki);
    EXPECT_EQ(berti.system_features[1].id,
              SystemFeatureId::kStlbMissRate);
}

TEST(Policies, DripperSchemeBuildsFilter)
{
    const SchemeConfig s = scheme_dripper(L1dPrefetcherKind::kBerti);
    EXPECT_EQ(s.policy, PgcPolicy::kFilter);
    ASSERT_TRUE(static_cast<bool>(s.make_filter));
    const FilterPtr f = s.make_filter();
    EXPECT_EQ(f->name(), "DRIPPER");
}

TEST(Policies, Filter2MbVariantFlagged)
{
    const SchemeConfig s =
        scheme_dripper_filter_2mb(L1dPrefetcherKind::kBerti);
    EXPECT_TRUE(s.filter_at_2mb);
    EXPECT_EQ(s.policy, PgcPolicy::kFilter);
}

TEST(Policies, PpfExcludesDeltaAndSystemFeatures)
{
    const FilterPtr f = make_ppf(false);
    const auto *moka_f = dynamic_cast<const MokaFilter *>(f.get());
    ASSERT_NE(moka_f, nullptr);
    EXPECT_TRUE(moka_f->config().system_features.empty());
    for (ProgramFeatureId id : moka_f->config().program_features) {
        EXPECT_NE(id, ProgramFeatureId::kDelta);
        EXPECT_NE(id, ProgramFeatureId::kPcXorDelta);
        EXPECT_NE(id, ProgramFeatureId::kVaXorDelta);
    }
    EXPECT_FALSE(moka_f->config().threshold.adaptive);

    const FilterPtr dthr = make_ppf(true);
    const auto *dthr_f = dynamic_cast<const MokaFilter *>(dthr.get());
    ASSERT_NE(dthr_f, nullptr);
    EXPECT_TRUE(dthr_f->config().threshold.adaptive);
}

TEST(Policies, SingleFeatureSchemesNamed)
{
    const SchemeConfig p = scheme_single_program(ProgramFeatureId::kDelta);
    EXPECT_EQ(p.name, "PF:Delta");
    const SchemeConfig s = scheme_single_system(SystemFeatureId::kStlbMpki);
    EXPECT_EQ(s.name, "SF:sTLB MPKI");
    EXPECT_TRUE(static_cast<bool>(p.make_filter));
    EXPECT_TRUE(static_cast<bool>(s.make_filter));
    // Instantiate both to validate their configs.
    EXPECT_NE(p.make_filter(), nullptr);
    EXPECT_NE(s.make_filter(), nullptr);
}

TEST(Policies, ParseL1dKinds)
{
    EXPECT_EQ(parse_l1d_kind("berti"), L1dPrefetcherKind::kBerti);
    EXPECT_EQ(parse_l1d_kind("ipcp"), L1dPrefetcherKind::kIpcp);
    EXPECT_EQ(parse_l1d_kind("bop"), L1dPrefetcherKind::kBop);
    EXPECT_EQ(parse_l1d_kind("nl"), L1dPrefetcherKind::kNextLine);
}

}  // namespace
}  // namespace moka
