/** @file Unit tests for replacement policies. */
#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.h"

namespace moka {
namespace {

TEST(Replacement, LruEvictsOldest)
{
    auto p = make_replacement(ReplacementKind::kLru, 2, 4);
    for (std::uint32_t w = 0; w < 4; ++w) {
        p->on_fill(0, w);
    }
    p->on_hit(0, 0);  // way 1 is now oldest
    EXPECT_EQ(p->victim(0), 1u);
    p->on_hit(0, 1);
    EXPECT_EQ(p->victim(0), 2u);
}

TEST(Replacement, LruSetsIndependent)
{
    auto p = make_replacement(ReplacementKind::kLru, 2, 2);
    p->on_fill(0, 0);
    p->on_fill(0, 1);
    p->on_fill(1, 1);
    p->on_fill(1, 0);
    EXPECT_EQ(p->victim(0), 0u);
    EXPECT_EQ(p->victim(1), 1u);
}

TEST(Replacement, SrripHitPromotes)
{
    auto p = make_replacement(ReplacementKind::kSrrip, 1, 4);
    for (std::uint32_t w = 0; w < 4; ++w) {
        p->on_fill(0, w);
    }
    p->on_hit(0, 2);  // rrpv 0: near-immediate re-reference
    // All others age together; way 2 must not be the victim.
    EXPECT_NE(p->victim(0), 2u);
}

TEST(Replacement, RandomCoversAllWays)
{
    auto p = make_replacement(ReplacementKind::kRandom, 1, 4, /*seed=*/5);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t v = p->victim(0);
        EXPECT_LT(v, 4u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Replacement, Names)
{
    EXPECT_STREQ(make_replacement(ReplacementKind::kLru, 1, 1)->name(),
                 "lru");
    EXPECT_STREQ(make_replacement(ReplacementKind::kSrrip, 1, 1)->name(),
                 "srrip");
    EXPECT_STREQ(make_replacement(ReplacementKind::kRandom, 1, 1)->name(),
                 "random");
}

/** Property: victim is always a legal way for every policy. */
class VictimBounds : public ::testing::TestWithParam<ReplacementKind>
{
};

TEST_P(VictimBounds, AlwaysInRange)
{
    auto p = make_replacement(GetParam(), 8, 6, 9);
    for (std::uint32_t s = 0; s < 8; ++s) {
        for (std::uint32_t w = 0; w < 6; ++w) {
            p->on_fill(s, w);
        }
    }
    for (int i = 0; i < 500; ++i) {
        const std::uint32_t set = static_cast<std::uint32_t>(i % 8);
        const std::uint32_t v = p->victim(set);
        ASSERT_LT(v, 6u);
        p->on_fill(set, v);
        p->on_hit(set, (v + 1) % 6);
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, VictimBounds,
                         ::testing::Values(ReplacementKind::kLru,
                                           ReplacementKind::kSrrip,
                                           ReplacementKind::kRandom));

}  // namespace
}  // namespace moka
