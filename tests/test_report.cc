/** @file Unit tests for CSV/JSON result export. */
#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"

namespace moka {
namespace {

ResultRow
sample_row()
{
    ResultRow row;
    row.workload = "gap.csr.0";
    row.suite = "GAP";
    row.scheme = "DRIPPER";
    row.prefetcher = "berti";
    row.metrics.instructions = 1000;
    row.metrics.cycles = 2000;
    row.metrics.l1d = {300, 50};
    row.metrics.pgc_issued = 10;
    row.metrics.pgc_useful = 8;
    row.metrics.pgc_useless = 2;
    return row;
}

TEST(Report, CsvColumnsMatchHeader)
{
    const std::string header = csv_header();
    const std::string line = to_csv(sample_row());
    const auto count = [](const std::string &s) {
        std::size_t n = 1;
        for (char c : s) {
            n += c == ',' ? 1 : 0;
        }
        return n;
    };
    EXPECT_EQ(count(header), count(line));
}

TEST(Report, CsvValues)
{
    const std::string line = to_csv(sample_row());
    EXPECT_NE(line.find("gap.csr.0,GAP,DRIPPER,berti,1000,2000,0.5"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find(",50,"), std::string::npos);  // l1d mpki = 50
}

TEST(Report, WriteCsvEmitsHeaderAndRows)
{
    std::ostringstream os;
    write_csv(os, {sample_row(), sample_row()});
    const std::string out = os.str();
    std::size_t lines = 0;
    for (char c : out) {
        lines += c == '\n' ? 1 : 0;
    }
    EXPECT_EQ(lines, 3u);
    EXPECT_EQ(out.rfind("workload,", 0), 0u);
}

TEST(Report, JsonWellFormedEnough)
{
    const std::string j = to_json(sample_row());
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    EXPECT_NE(j.find("\"ipc\": 0.5"), std::string::npos);
    EXPECT_NE(j.find("\"accuracy\": 0.8"), std::string::npos);
    // Balanced braces.
    int depth = 0;
    for (char c : j) {
        depth += c == '{' ? 1 : 0;
        depth -= c == '}' ? 1 : 0;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace moka
