/** @file Unit tests for common/rng.h (determinism + distribution). */
#include <gtest/gtest.h>

#include "common/rng.h"

namespace moka {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsBounded)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 100ull, 1000000007ull}) {
        for (int i = 0; i < 500; ++i) {
            EXPECT_LT(r.below(bound), bound);
        }
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean should be close to 0.5.
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng r(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        hits += r.chance(0.25) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace moka
