/** @file Unit tests for runner/config plumbing. */
#include <gtest/gtest.h>

#include "filter/policies.h"
#include "sim/runner.h"

namespace moka {
namespace {

TEST(Runner, MakeConfigWiresSchemeAndPrefetcher)
{
    const SchemeConfig scheme = scheme_permit();
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kIpcp, scheme);
    EXPECT_EQ(cfg.l1d_prefetcher, L1dPrefetcherKind::kIpcp);
    EXPECT_EQ(cfg.scheme.policy, PgcPolicy::kPermit);
    EXPECT_EQ(cfg.scheme.name, "Permit PGC");
}

TEST(Runner, DefaultConfigMatchesTableFour)
{
    const MachineConfig cfg = default_config(1);
    // L1D 32KB 8-way, L1I 48KB 12-way, L2 512KB 8-way, LLC 2MB 16-way.
    EXPECT_EQ(cfg.l1d.sets * cfg.l1d.ways * kBlockSize, 32u << 10);
    EXPECT_EQ(cfg.l1i.sets * cfg.l1i.ways * kBlockSize, 48u << 10);
    EXPECT_EQ(cfg.l2.sets * cfg.l2.ways * kBlockSize, 512u << 10);
    EXPECT_EQ(cfg.llc.sets * cfg.llc.ways * kBlockSize, 2u << 20);
    // dTLB 64-entry 4-way, sTLB 1536-entry 12-way.
    EXPECT_EQ(cfg.dtlb.sets * cfg.dtlb.ways, 64u);
    EXPECT_EQ(cfg.stlb.sets * cfg.stlb.ways, 1536u);
    // Core: 352-entry ROB, 6-wide.
    EXPECT_EQ(cfg.core.rob_entries, 352u);
    EXPECT_EQ(cfg.core.width, 6u);
}

TEST(Runner, MulticoreConfigScalesSharedResources)
{
    const MachineConfig one = default_config(1);
    const MachineConfig eight = default_config(8);
    EXPECT_EQ(eight.llc.sets, one.llc.sets * 8);
    EXPECT_GE(eight.dram.channels, one.dram.channels);
    EXPECT_GT(eight.vmem.phys_bytes, one.vmem.phys_bytes);
}

TEST(Runner, RunSingleHonoursBudgets)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kNextLine, scheme_discard());
    RunConfig run;
    run.warmup_insts = 7'000;
    run.measure_insts = 13'000;
    const RunMetrics m =
        run_single(cfg, seen_workloads().front(), run);
    EXPECT_EQ(m.instructions, 13'000u);
}

}  // namespace
}  // namespace moka
