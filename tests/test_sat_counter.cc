/** @file Unit tests for common/sat_counter.h. */
#include <gtest/gtest.h>

#include "common/sat_counter.h"

namespace moka {
namespace {

TEST(SignedSatCounter, FiveBitRails)
{
    SignedSatCounter c(5);
    EXPECT_EQ(c.min(), -16);
    EXPECT_EQ(c.max(), 15);
    for (int i = 0; i < 100; ++i) {
        c.increment();
    }
    EXPECT_EQ(c.value(), 15);
    EXPECT_TRUE(c.saturated());
    for (int i = 0; i < 100; ++i) {
        c.decrement();
    }
    EXPECT_EQ(c.value(), -16);
    EXPECT_TRUE(c.saturated());
}

TEST(SignedSatCounter, InitialClamp)
{
    SignedSatCounter c(5, 100);
    EXPECT_EQ(c.value(), 15);
    SignedSatCounter d(5, -100);
    EXPECT_EQ(d.value(), -16);
}

TEST(SignedSatCounter, StepBy)
{
    SignedSatCounter c(6);
    c.increment(10);
    EXPECT_EQ(c.value(), 10);
    c.decrement(15);
    EXPECT_EQ(c.value(), -5);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(UnsignedSatCounter, Rails)
{
    UnsignedSatCounter c(2);
    EXPECT_EQ(c.max(), 3);
    c.decrement();
    EXPECT_EQ(c.value(), 0);
    for (int i = 0; i < 10; ++i) {
        c.increment();
    }
    EXPECT_EQ(c.value(), 3);
}

/** Width property sweep: rails are +-2^(n-1) for the signed counter. */
class SatWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatWidth, RailsMatchWidth)
{
    const unsigned w = GetParam();
    SignedSatCounter c(w);
    EXPECT_EQ(c.min(), -(1 << (w - 1)));
    EXPECT_EQ(c.max(), (1 << (w - 1)) - 1);
    for (int i = 0; i < (1 << w) + 5; ++i) {
        c.increment();
    }
    EXPECT_EQ(c.value(), c.max());
    for (int i = 0; i < (1 << (w + 1)); ++i) {
        c.decrement();
    }
    EXPECT_EQ(c.value(), c.min());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatWidth,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u, 10u));

}  // namespace
}  // namespace moka
