/**
 * @file
 * Property sweeps across every page-cross scheme: determinism,
 * accounting invariants (candidates = issued + dropped for
 * machine-filtered schemes), and accuracy ordering.
 */
#include <gtest/gtest.h>

#include "filter/policies.h"
#include "sim/runner.h"
#include "trace/suites.h"

namespace moka {
namespace {

enum class SchemeId {
    kDiscard,
    kPermit,
    kDiscardPtw,
    kIso,
    kPpf,
    kPpfDthr,
    kDripper,
    kDripperSf,
    kDripperMeta,
};

SchemeConfig
make_scheme(SchemeId id)
{
    const L1dPrefetcherKind k = L1dPrefetcherKind::kBerti;
    switch (id) {
      case SchemeId::kDiscard:     return scheme_discard();
      case SchemeId::kPermit:      return scheme_permit();
      case SchemeId::kDiscardPtw:  return scheme_discard_ptw();
      case SchemeId::kIso:         return scheme_iso_storage();
      case SchemeId::kPpf:         return scheme_ppf(false);
      case SchemeId::kPpfDthr:     return scheme_ppf(true);
      case SchemeId::kDripper:     return scheme_dripper(k);
      case SchemeId::kDripperSf:   return scheme_dripper_sf(k);
      case SchemeId::kDripperMeta: return scheme_dripper_specialized(k);
    }
    return scheme_discard();
}

class SchemeProperty : public ::testing::TestWithParam<SchemeId>
{
  protected:
    static WorkloadSpec
    stream_spec()
    {
        for (const WorkloadSpec &s : seen_workloads()) {
            if (s.family == Family::kStream) {
                return s;
            }
        }
        return seen_workloads().front();
    }
};

TEST_P(SchemeProperty, DeterministicReplay)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, make_scheme(GetParam()));
    const RunConfig run{10'000, 60'000};
    const RunMetrics a = run_single(cfg, stream_spec(), run);
    const RunMetrics b = run_single(cfg, stream_spec(), run);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.pgc_issued, b.pgc_issued);
    EXPECT_EQ(a.pgc_dropped, b.pgc_dropped);
    EXPECT_EQ(a.l1d.misses, b.l1d.misses);
}

TEST_P(SchemeProperty, CandidateAccounting)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, make_scheme(GetParam()));
    const RunConfig run{10'000, 60'000};
    const RunMetrics m = run_single(cfg, stream_spec(), run);
    // Every page-cross candidate is either dropped by the policy or
    // flows to the TLB path. Issued fills can be fewer than permitted
    // candidates (duplicates hit in cache), never more.
    EXPECT_LE(m.pgc_issued, m.pgc_candidates);
    EXPECT_LE(m.pgc_dropped, m.pgc_candidates);
    // Resolved usefulness never exceeds issues.
    EXPECT_LE(m.pgc_useful + m.pgc_useless, m.pgc_issued + 1);
}

TEST_P(SchemeProperty, SpeculativeWalkDiscipline)
{
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti, make_scheme(GetParam()));
    const RunConfig run{10'000, 60'000};
    const RunMetrics m = run_single(cfg, stream_spec(), run);
    const SchemeConfig scheme = make_scheme(GetParam());
    if (scheme.policy == PgcPolicy::kDiscard ||
        scheme.policy == PgcPolicy::kDiscardPtw) {
        EXPECT_EQ(m.spec_walks, 0u);
    }
    if (scheme.policy == PgcPolicy::kPermit) {
        EXPECT_EQ(m.pgc_dropped, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Values(SchemeId::kDiscard, SchemeId::kPermit,
                      SchemeId::kDiscardPtw, SchemeId::kIso,
                      SchemeId::kPpf, SchemeId::kPpfDthr,
                      SchemeId::kDripper, SchemeId::kDripperSf,
                      SchemeId::kDripperMeta));

/** Determinism must also hold per prefetcher. */
class PrefetcherProperty
    : public ::testing::TestWithParam<L1dPrefetcherKind>
{
};

TEST_P(PrefetcherProperty, DripperDeterministicAndSane)
{
    const MachineConfig cfg =
        make_config(GetParam(), scheme_dripper(GetParam()));
    const WorkloadSpec spec = seen_workloads()[3];
    const RunConfig run{10'000, 60'000};
    const RunMetrics a = run_single(cfg, spec, run);
    const RunMetrics b = run_single(cfg, spec, run);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.ipc(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefetchers, PrefetcherProperty,
    ::testing::Values(L1dPrefetcherKind::kBerti, L1dPrefetcherKind::kIpcp,
                      L1dPrefetcherKind::kBop, L1dPrefetcherKind::kStride,
                      L1dPrefetcherKind::kNextLine));

}  // namespace
}  // namespace moka
