/**
 * @file
 * Tests for the sharded execution layer: lease claim/expiry/steal
 * semantics, the steal-vs-double-execute exclusion, done markers,
 * concurrent shards producing a merged report byte-identical to a
 * serial run, restart-resume from a shard's own journal, and the
 * merge step's duplicate/conflict/missing-job policy.
 *
 * Timing: lease TTLs here are either huge (5 s — never expires within
 * a test) or tiny (60 ms) with sleeps several times longer, so the
 * assertions hold on arbitrarily slow CI machines.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/jobs/engine.h"
#include "sim/jobs/journal.h"
#include "sim/jobs/lease.h"
#include "sim/jobs/shard.h"

namespace moka {
namespace {

std::string
temp_dir(const char *tag)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "moka_shard_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::vector<JobSpec>
trivial_jobs(std::size_t n)
{
    std::vector<JobSpec> jobs(n);
    for (std::size_t i = 0; i < n; ++i) {
        jobs[i].id = i;
        jobs[i].workload.name = "job" + std::to_string(i);
    }
    return jobs;
}

JobOutput
echo_body(const JobSpec &spec, JobContext &)
{
    JobOutput out;
    out.row.workload = spec.workload.name;
    out.row.suite = "test";
    out.row.scheme = "s";
    out.row.prefetcher = "p";
    out.aux = {static_cast<double>(spec.id) + 0.5};
    return out;
}

std::string
all_csv(const EngineReport &report)
{
    std::string out;
    for (const JobResult &res : report.results) {
        out += res.csv;
        out += '\n';
    }
    return out;
}

void
sleep_ms(std::uint64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------------
// Lease protocol
// ---------------------------------------------------------------------------

TEST(Lease, ExclusiveClaimAndRelease)
{
    const std::string dir = temp_dir("claim");
    LeaseDir a(dir, "a", 5000);
    LeaseDir b(dir, "b", 5000);

    EXPECT_EQ(a.try_claim(0, /*allow_steal=*/true),
              ClaimOutcome::kAcquired);
    // A live lease is busy for everyone else, steal or not.
    EXPECT_EQ(b.try_claim(0, true), ClaimOutcome::kBusy);
    EXPECT_EQ(b.try_claim(0, false), ClaimOutcome::kBusy);
    // Heartbeats succeed only for the owner.
    EXPECT_TRUE(a.refresh(0));
    EXPECT_FALSE(b.refresh(0));
    // Releasing is idempotent and only drops our own lease.
    b.release(0);
    EXPECT_TRUE(a.refresh(0));
    a.release(0);
    EXPECT_EQ(b.try_claim(0, false), ClaimOutcome::kAcquired);
    std::filesystem::remove_all(dir);
}

TEST(Lease, DoneMarkerRoundTripsAndShortCircuitsClaims)
{
    const std::string dir = temp_dir("done");
    LeaseDir a(dir, "a", 5000);
    ASSERT_EQ(a.try_claim(4, true), ClaimOutcome::kAcquired);
    DoneMarker marker;
    marker.job_id = 4;
    marker.status = JobStatus::kCompleted;
    marker.sum = 0xfeedfacecafebeefull;
    marker.owner = "a";
    ASSERT_TRUE(a.mark_done(marker));

    LeaseDir b(dir, "b", 5000);
    EXPECT_TRUE(b.is_done(4));
    DoneMarker back;
    ASSERT_TRUE(b.read_done(4, back));
    EXPECT_EQ(back.job_id, 4u);
    EXPECT_EQ(back.status, JobStatus::kCompleted);
    EXPECT_EQ(back.sum, marker.sum);
    EXPECT_EQ(back.owner, "a");
    // mark_done released the lease and the marker wins all claims.
    EXPECT_EQ(b.try_claim(4, true), ClaimOutcome::kDone);
    EXPECT_EQ(a.try_claim(4, true), ClaimOutcome::kDone);
    EXPECT_FALSE(b.read_done(5, back));
    std::filesystem::remove_all(dir);
}

TEST(Lease, ExpiredLeaseIsStolenAndOldOwnerCannotCommit)
{
    const std::string dir = temp_dir("steal");
    LeaseDir dead(dir, "dead", /*ttl_ms=*/60);
    LeaseDir thief(dir, "thief", /*ttl_ms=*/60);
    ASSERT_EQ(dead.try_claim(0, true), ClaimOutcome::kAcquired);
    sleep_ms(400);  // several TTLs: the lease is unambiguously stale

    // Without permission to steal, an expired lease still reads busy.
    EXPECT_EQ(thief.try_claim(0, false), ClaimOutcome::kBusy);
    EXPECT_EQ(thief.try_claim(0, true), ClaimOutcome::kStolen);

    // The steal-vs-double-execute exclusion: the original owner's
    // next heartbeat fails (the lease file carries the thief's nonce
    // now), so a wedged-but-alive owner aborts instead of committing.
    EXPECT_FALSE(dead.refresh(0));
    EXPECT_TRUE(thief.refresh(0));
    // And releasing from the old owner must not drop the thief's lease.
    dead.release(0);
    EXPECT_TRUE(thief.refresh(0));
    std::filesystem::remove_all(dir);
}

TEST(Lease, RefreshExtendsExpiry)
{
    const std::string dir = temp_dir("heartbeat");
    LeaseDir owner(dir, "owner", /*ttl_ms=*/300);
    LeaseDir thief(dir, "thief", /*ttl_ms=*/300);
    ASSERT_EQ(owner.try_claim(0, true), ClaimOutcome::kAcquired);
    // Heartbeat for ~3 TTLs; the lease must never become stealable.
    for (int i = 0; i < 9; ++i) {
        sleep_ms(100);
        ASSERT_TRUE(owner.refresh(0));
        ASSERT_EQ(thief.try_claim(0, true), ClaimOutcome::kBusy) << i;
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Sharded execution
// ---------------------------------------------------------------------------

TEST(ShardEngine, ConcurrentShardsMergeByteIdenticalToSerial)
{
    const std::string dir = temp_dir("farm");
    const auto jobs = trivial_jobs(12);
    const std::string reference =
        all_csv(JobEngine(EngineConfig()).run(jobs, echo_body));

    ShardReport ra, rb;
    auto shard_run = [&](const char *name, ShardReport *out) {
        ShardConfig cfg;
        cfg.dir = dir;
        cfg.name = name;
        cfg.lease_ttl_ms = 5000;  // never expires inside this test
        ShardEngine shard(cfg);
        *out = shard.run(jobs, echo_body);
    };
    std::thread ta(shard_run, "a", &ra);
    std::thread tb(shard_run, "b", &rb);
    ta.join();
    tb.join();

    // Leases never expired, so every job ran exactly once somewhere
    // and each shard saw the rest via done markers.
    EXPECT_EQ(ra.ran + rb.ran, 12u);
    EXPECT_EQ(ra.ran + ra.peer_done, 12u);
    EXPECT_EQ(rb.ran + rb.peer_done, 12u);
    EXPECT_EQ(ra.stolen + rb.stolen, 0u);
    EXPECT_EQ(ra.lost + rb.lost, 0u);
    EXPECT_EQ(ra.commit_failures + rb.commit_failures, 0u);
    EXPECT_TRUE(ra.engine.all_completed());
    EXPECT_TRUE(rb.engine.all_completed());

    const MergeReport merge = merge_shard_dir(dir, jobs.size());
    EXPECT_TRUE(merge.ok()) << merge.summary();
    EXPECT_EQ(merge.shards, 2u);
    EXPECT_EQ(merge.records.size(), 12u);
    EXPECT_EQ(merge.duplicates, 0u);
    const EngineReport merged = report_from_merge(merge, jobs);
    EXPECT_TRUE(merged.all_completed());
    EXPECT_EQ(all_csv(merged), reference);
    std::filesystem::remove_all(dir);
}

TEST(ShardEngine, RestartResumesFromOwnJournal)
{
    const std::string dir = temp_dir("restart");
    const auto jobs = trivial_jobs(6);
    ShardConfig cfg;
    cfg.dir = dir;
    cfg.name = "solo";
    cfg.lease_ttl_ms = 5000;
    const ShardReport first = ShardEngine(cfg).run(jobs, echo_body);
    EXPECT_EQ(first.ran, 6u);

    // Same name, fresh process (modelled by a fresh engine): every
    // job replays from shard-solo.jsonl, nothing re-executes.
    const ShardReport again = ShardEngine(cfg).run(
        jobs, [](const JobSpec &, JobContext &) -> JobOutput {
            throw JobError(JobErrorCode::kUnknown,
                           "nothing should re-run");
        });
    EXPECT_EQ(again.ran, 0u);
    EXPECT_EQ(again.engine.resumed, 6u);
    EXPECT_TRUE(again.engine.all_completed());
    std::filesystem::remove_all(dir);
}

TEST(ShardEngine, NamesAndJournalPaths)
{
    EXPECT_EQ(ShardEngine::sanitize_name("host-1_gpu"), "host-1_gpu");
    EXPECT_EQ(ShardEngine::sanitize_name("rack/3 node:7"),
              "rack-3-node-7");
    EXPECT_EQ(ShardEngine::journal_path("/farm", "a"),
              "/farm/shard-a.jsonl");
}

// ---------------------------------------------------------------------------
// Merge policy
// ---------------------------------------------------------------------------

JournalRecord
completed_record(std::size_t job, const std::string &csv)
{
    JournalRecord rec;
    rec.job_id = job;
    rec.status = JobStatus::kCompleted;
    rec.attempts = 1;
    rec.csv = csv;
    return rec;
}

void
write_shard_journal(const std::string &dir, const std::string &name,
                    const std::vector<JournalRecord> &records)
{
    std::ofstream os(ShardEngine::journal_path(dir, name));
    for (const JournalRecord &rec : records) {
        os << to_jsonl(rec) << '\n';
    }
}

TEST(Merge, DedupesIdenticalRecordsAcrossShards)
{
    // A false lease expiry makes two shards run the same job; both
    // journal byte-identical records (determinism), and the merge
    // keeps exactly one.
    const std::string dir = temp_dir("dedupe");
    write_shard_journal(dir, "a",
                        {completed_record(0, "row0"),
                         completed_record(1, "row1")});
    write_shard_journal(dir, "b", {completed_record(1, "row1")});
    const MergeReport merge = merge_shard_dir(dir, 2);
    EXPECT_TRUE(merge.ok()) << merge.summary();
    EXPECT_EQ(merge.records.size(), 2u);
    EXPECT_EQ(merge.duplicates, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Merge, ConflictingCompletedResultsAreAHardProblem)
{
    const std::string dir = temp_dir("conflict");
    write_shard_journal(dir, "a", {completed_record(0, "row0")});
    write_shard_journal(dir, "b", {completed_record(0, "DIFFERENT")});
    const MergeReport merge = merge_shard_dir(dir, 1);
    EXPECT_FALSE(merge.ok());
    ASSERT_FALSE(merge.problems.empty());
    EXPECT_NE(merge.summary().find("conflicting"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Merge, MissingJobsAndEmptyDirsAreProblems)
{
    const std::string dir = temp_dir("missing");
    const MergeReport empty = merge_shard_dir(dir, 1);
    EXPECT_FALSE(empty.ok());

    write_shard_journal(dir, "a", {completed_record(0, "row0")});
    const MergeReport partial = merge_shard_dir(dir, 3);
    EXPECT_FALSE(partial.ok());
    EXPECT_EQ(partial.records.size(), 1u);
    EXPECT_GE(partial.problems.size(), 2u);  // jobs 1 and 2 missing
    // The same journals merge cleanly once the matrix matches.
    EXPECT_TRUE(merge_shard_dir(dir, 1).ok());
    std::filesystem::remove_all(dir);
}

TEST(Merge, CompletedRerunSupersedesFailedRecord)
{
    // Shard a died after journaling a failure; shard b stole the job
    // and completed it. The completion wins; the failure is counted
    // as superseded, not as a conflict.
    const std::string dir = temp_dir("supersede");
    JournalRecord failed;
    failed.job_id = 0;
    failed.status = JobStatus::kFailed;
    failed.attempts = 2;
    failed.error = JobErrorCode::kTimeout;
    failed.error_message = "watchdog";
    write_shard_journal(dir, "a", {failed});
    write_shard_journal(dir, "b", {completed_record(0, "row0")});
    const MergeReport merge = merge_shard_dir(dir, 1);
    EXPECT_TRUE(merge.ok()) << merge.summary();
    ASSERT_EQ(merge.records.size(), 1u);
    EXPECT_EQ(merge.records[0].status, JobStatus::kCompleted);
    EXPECT_EQ(merge.superseded, 1u);

    const EngineReport report =
        report_from_merge(merge, trivial_jobs(1));
    EXPECT_TRUE(report.all_completed());
    EXPECT_EQ(report.results[0].csv, "row0");
    std::filesystem::remove_all(dir);
}

TEST(Merge, AllFailedKeepsTheMostInformedRecord)
{
    const std::string dir = temp_dir("failures");
    JournalRecord early;
    early.job_id = 0;
    early.status = JobStatus::kFailed;
    early.attempts = 1;
    early.error = JobErrorCode::kTimeout;
    JournalRecord late = early;
    late.attempts = 3;
    write_shard_journal(dir, "a", {early});
    write_shard_journal(dir, "b", {late});
    const MergeReport merge = merge_shard_dir(dir, 1);
    EXPECT_TRUE(merge.ok()) << merge.summary();
    ASSERT_EQ(merge.records.size(), 1u);
    EXPECT_EQ(merge.records[0].attempts, 3);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace moka
