/** @file Snapshot subsystem: format, per-component round-trips,
 *  whole-machine byte-identity, cache, and corruption handling. */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/branch_pred.h"
#include "dram/dram.h"
#include "filter/adaptive_threshold.h"
#include "filter/features.h"
#include "filter/moka.h"
#include "filter/perceptron.h"
#include "filter/policies.h"
#include "filter/system_features.h"
#include "filter/update_buffer.h"
#include "prefetch/berti.h"
#include "prefetch/bop.h"
#include "prefetch/ipcp.h"
#include "prefetch/spp.h"
#include "prefetch/stride.h"
#include "prefetch/throttle.h"
#include "sim/jobs/job.h"
#include "sim/multicore.h"
#include "sim/runner.h"
#include "snapshot/cache.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "trace/suites.h"
#include "vmem/page_table.h"
#include "vmem/tlb.h"
#include "vmem/walker.h"

namespace moka {
namespace {

std::string
temp_dir(const char *tag)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "moka_snap_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// ---------------------------------------------------------------- format

TEST(SnapshotFormat, RoundTripPrimitives)
{
    SnapshotWriter w(0x1234);
    w.begin_section("prims");
    w.put_u8(0xAB);
    w.put_u16(0xBEEF);
    w.put_u32(0xDEADBEEFu);
    w.put_u64(0x0123456789ABCDEFull);
    w.put_i64(-42);
    w.put_bool(true);
    w.put_f64(-0.0);  // signed zero must survive bit-exactly
    w.put_f64(1.0 / 3.0);
    w.begin_section("vec");
    std::vector<std::uint64_t> vals = {1, 2, 3, 5, 8};
    put_vec(w, vals);
    const std::string bytes = w.finish();

    SnapshotReader r(bytes);
    EXPECT_EQ(r.fingerprint(), 0x1234u);
    r.begin_section("prims");
    EXPECT_EQ(r.get_u8(), 0xAB);
    EXPECT_EQ(r.get_u16(), 0xBEEF);
    EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.get_i64(), -42);
    EXPECT_TRUE(r.get_bool());
    EXPECT_TRUE(std::signbit(r.get_f64()));
    EXPECT_DOUBLE_EQ(r.get_f64(), 1.0 / 3.0);
    r.begin_section("vec");
    std::vector<std::uint64_t> back(vals.size());
    get_vec(r, back);
    EXPECT_EQ(back, vals);
    r.finish();
}

std::string
tiny_snapshot()
{
    SnapshotWriter w(7);
    w.begin_section("s");
    w.put_u64(99);
    return w.finish();
}

SnapshotErrorKind
reject_kind(const std::string &bytes)
{
    try {
        SnapshotReader r(bytes);
    } catch (const SnapshotError &e) {
        return e.kind();
    }
    ADD_FAILURE() << "corrupt snapshot was accepted";
    return SnapshotErrorKind::kMalformed;
}

TEST(SnapshotFormat, RejectsBadMagic)
{
    std::string bytes = tiny_snapshot();
    bytes[0] ^= 0xFF;
    EXPECT_EQ(reject_kind(bytes), SnapshotErrorKind::kBadMagic);
}

TEST(SnapshotFormat, RejectsWrongVersion)
{
    std::string bytes = tiny_snapshot();
    bytes[8] = static_cast<char>(bytes[8] + 1);  // version u32 LSB
    EXPECT_EQ(reject_kind(bytes), SnapshotErrorKind::kBadVersion);
}

TEST(SnapshotFormat, RejectsTruncation)
{
    const std::string bytes = tiny_snapshot();
    // Every proper prefix must be rejected, never mis-parsed.
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const SnapshotErrorKind kind = reject_kind(bytes.substr(0, n));
        EXPECT_TRUE(kind == SnapshotErrorKind::kTruncated ||
                    kind == SnapshotErrorKind::kBadMagic)
            << "prefix of " << n << " bytes";
    }
}

TEST(SnapshotFormat, RejectsFlippedPayloadBit)
{
    std::string bytes = tiny_snapshot();
    bytes[bytes.size() - 1] ^= 0x01;  // last payload byte
    EXPECT_EQ(reject_kind(bytes), SnapshotErrorKind::kChecksum);
}

TEST(SnapshotFormat, SectionNameMismatchIsMalformed)
{
    SnapshotReader r(tiny_snapshot());
    try {
        r.begin_section("wrong");
        ADD_FAILURE() << "mismatched section name accepted";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kMalformed);
    }
}

TEST(SnapshotFormat, OverconsumeIsMalformed)
{
    SnapshotReader r(tiny_snapshot());
    r.begin_section("s");
    (void)r.get_u64();
    try {
        (void)r.get_u64();
        ADD_FAILURE() << "read past the section end";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kMalformed);
    }
}

// ------------------------------------------------- component round-trips

/** One section's worth of @p obj's serialized state. */
template <typename T>
std::string
section_of(const T &obj)
{
    SnapshotWriter w(0);
    w.begin_section("t");
    obj.save_state(w);
    return w.finish();
}

/** Restore @p obj from section_of-style @p bytes. */
template <typename T>
void
restore_section(T &obj, const std::string &bytes)
{
    SnapshotReader r(bytes);
    r.begin_section("t");
    obj.restore_state(r);
    r.finish();
}

/**
 * The round-trip law every component must satisfy: state saved from
 * a driven instance, restored into a fresh same-config instance, and
 * saved again must be byte-identical.
 */
template <typename T>
void
expect_round_trip(const T &driven, T &fresh)
{
    const std::string bytes = section_of(driven);
    restore_section(fresh, bytes);
    EXPECT_EQ(section_of(fresh), bytes);
}

TEST(SnapshotComponents, Rng)
{
    Rng driven(1);
    for (int i = 0; i < 100; ++i) {
        (void)driven.below(1000);
    }
    Rng fresh(2);
    SnapshotWriter w(0);
    w.begin_section("t");
    SnapshotAccess::save(w, driven);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    r.begin_section("t");
    SnapshotAccess::restore(r, fresh);
    r.finish();
    // The restored stream must continue exactly where driven left off.
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(fresh.next(), driven.next());
    }
}

TEST(SnapshotComponents, Dram)
{
    DramConfig cfg;
    Dram driven(cfg);
    for (Addr a = 0; a < 64 * kBlockSize; a += kBlockSize) {
        (void)driven.access(PhysAddr{a * 37}, AccessType::kLoad, a);
    }
    Dram fresh(cfg);
    expect_round_trip(driven, fresh);
    // Behavioral check: next access sees the same open-row state.
    const AccessResult a =
        driven.access(PhysAddr{0x5000}, AccessType::kStore, 9999);
    const AccessResult b =
        fresh.access(PhysAddr{0x5000}, AccessType::kStore, 9999);
    EXPECT_EQ(a.done, b.done);
    EXPECT_EQ(a.hit, b.hit);
}

TEST(SnapshotComponents, CacheOverDram)
{
    DramConfig dcfg;
    CacheConfig ccfg;
    ccfg.name = "l1d";
    ccfg.sets = 16;
    ccfg.ways = 4;
    Dram dram_a(dcfg), dram_b(dcfg);
    Cache driven(ccfg, &dram_a);
    for (Addr a = 0; a < 256; ++a) {
        (void)driven.access(PhysAddr{a * kBlockSize * 3}, AccessType::kLoad,
                            a);
    }
    Cache fresh(ccfg, &dram_b);
    expect_round_trip(driven, fresh);
}

TEST(SnapshotComponents, Tlb)
{
    TlbConfig cfg;
    Tlb driven(cfg);
    for (Addr page = 0; page < 128; ++page) {
        const Addr vaddr = page << 12;
        (void)driven.lookup(VirtAddr{vaddr}, page, /*demand=*/true);
        driven.fill(VirtAddr{vaddr}, PhysAddr{vaddr | 0x1000000},
                    /*large=*/false,
                    /*from_prefetch=*/(page % 3) == 0);
    }
    Tlb fresh(cfg);
    expect_round_trip(driven, fresh);
}

TEST(SnapshotComponents, PageTableAndWalker)
{
    VmemConfig vcfg;
    WalkerConfig wcfg;
    DramConfig dcfg;
    Dram dram_a(dcfg), dram_b(dcfg);
    PageTable pt_driven(vcfg);
    PageWalker driven(wcfg, &pt_driven, &dram_a);
    for (Addr page = 0; page < 64; ++page) {
        (void)driven.walk(VirtAddr{page << 12}, page,
                          /*speculative=*/page % 2);
    }
    PageTable pt_fresh(vcfg);
    PageWalker fresh(wcfg, &pt_fresh, &dram_b);
    // Walker depends on its table: restore both, compare both.
    expect_round_trip(pt_driven, pt_fresh);
    expect_round_trip(driven, fresh);
}

TEST(SnapshotComponents, BranchPredictor)
{
    BranchPredConfig cfg;
    BranchPredictor driven(cfg);
    for (Addr pc = 0; pc < 500; ++pc) {
        const bool taken = (pc % 7) < 3;
        (void)driven.predict(pc * 4);
        driven.update(pc * 4, taken);
    }
    BranchPredictor fresh(cfg);
    expect_round_trip(driven, fresh);
    for (Addr pc = 0; pc < 64; ++pc) {
        EXPECT_EQ(fresh.predict(pc * 4), driven.predict(pc * 4));
    }
}

/** Drive @p pf across page-crossing strides so tables populate. */
void
drive_prefetcher(Prefetcher &pf)
{
    std::vector<PrefetchRequest> out;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        PrefetchContext ctx;
        ctx.pc = 0x400000 + (i % 7) * 4;
        ctx.vaddr = VirtAddr{(i * 3) * kBlockSize};
        ctx.hit = (i % 4) != 0;
        ctx.now = i * 10;
        pf.on_access(ctx, out);
        if (i % 5 == 0) {
            pf.on_fill(ctx.vaddr + kBlockSize, ctx.now + 50,
                       /*was_prefetch=*/i % 10 == 0);
        }
        out.clear();
    }
}

template <typename P, typename Cfg>
void
expect_prefetcher_round_trip()
{
    Cfg cfg;
    P driven(cfg);
    drive_prefetcher(driven);
    P fresh(cfg);
    SnapshotWriter w(0);
    driven.save_state(w);  // prefetchers open their own section
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    fresh.restore_state(r);
    r.finish();
    SnapshotWriter w2(0);
    fresh.save_state(w2);
    EXPECT_EQ(w2.finish(), bytes);
}

TEST(SnapshotComponents, Berti)
{
    expect_prefetcher_round_trip<Berti, BertiConfig>();
}

TEST(SnapshotComponents, Ipcp)
{
    expect_prefetcher_round_trip<Ipcp, IpcpConfig>();
}

TEST(SnapshotComponents, Bop)
{
    expect_prefetcher_round_trip<Bop, BopConfig>();
}

TEST(SnapshotComponents, Stride)
{
    expect_prefetcher_round_trip<StridePrefetcher,
                                 StridePrefetcherConfig>();
}

TEST(SnapshotComponents, Spp)
{
    expect_prefetcher_round_trip<Spp, SppConfig>();
}

TEST(SnapshotComponents, Throttle)
{
    ThrottleConfig cfg;
    ThrottledPrefetcher driven(std::make_unique<Bop>(BopConfig{}), cfg);
    drive_prefetcher(driven);
    ThrottledPrefetcher fresh(std::make_unique<Bop>(BopConfig{}), cfg);
    SnapshotWriter w(0);
    driven.save_state(w);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    fresh.restore_state(r);
    r.finish();
    SnapshotWriter w2(0);
    fresh.save_state(w2);
    EXPECT_EQ(w2.finish(), bytes);
}

TEST(SnapshotComponents, UpdateBuffer)
{
    VirtUpdateBuffer driven(32);
    for (std::uint64_t i = 0; i < 100; ++i) {
        VirtDecisionRecord rec;
        rec.block = VirtAddr{i * kBlockSize};
        rec.num_features = 3;
        rec.indexes[0] = static_cast<std::uint32_t>(i);
        driven.insert(rec);
        if (i % 3 == 0) {
            VirtDecisionRecord out;
            (void)driven.take(VirtAddr{(i / 2) * kBlockSize}, out);
        }
    }
    VirtUpdateBuffer fresh(32);
    expect_round_trip(driven, fresh);
    // Same lookup must succeed/fail identically after restore.
    VirtDecisionRecord a, b;
    EXPECT_EQ(driven.take(VirtAddr{99 * kBlockSize}, a),
              fresh.take(VirtAddr{99 * kBlockSize}, b));
}

TEST(SnapshotComponents, WeightTable)
{
    WeightTable driven(256, 5);
    for (std::uint64_t v = 0; v < 600; ++v) {
        const std::uint32_t idx = driven.index_of(v * 2654435761u);
        if (v % 3 == 0) {
            driven.decrement(idx);
        } else {
            driven.increment(idx);
        }
    }
    WeightTable fresh(256, 5);
    expect_round_trip(driven, fresh);
    EXPECT_EQ(fresh.weight_at(driven.index_of(12345)),
              driven.weight_at(driven.index_of(12345)));
}

TEST(SnapshotComponents, AdaptiveThreshold)
{
    ThresholdConfig cfg;
    AdaptiveThreshold driven(cfg);
    for (int e = 0; e < 20; ++e) {
        EpochInfo info;
        info.pgc_accuracy = (e % 5) * 0.2;
        info.accuracy_valid = e > 2;
        info.ipc = 1.0 + 0.01 * e;
        driven.on_epoch(info);
    }
    AdaptiveThreshold fresh(cfg);
    // AdaptiveThreshold opens its own section.
    SnapshotWriter w(0);
    driven.save_state(w);
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    fresh.restore_state(r);
    r.finish();
    SnapshotWriter w2(0);
    fresh.save_state(w2);
    EXPECT_EQ(w2.finish(), bytes);
    EXPECT_EQ(fresh.threshold(), driven.threshold());
}

TEST(SnapshotComponents, MokaFilter)
{
    const MokaConfig cfg = dripper_config(L1dPrefetcherKind::kBerti);
    MokaFilter driven(cfg);
    SystemSnapshot snap;
    snap.l1d_mpki = 12.0;
    snap.stlb_mpki = 2.0;
    for (std::uint64_t i = 0; i < 500; ++i) {
        const Addr pc = 0x400100 + (i % 11) * 4;
        const Addr vaddr = i * 4096 + (i % 64) * 64;
        driven.on_demand_access(pc, VirtAddr{vaddr});
        const bool ok = driven.permit(pc, VirtAddr{vaddr}, 5,
                                      VirtAddr{vaddr + 5 * 64}, snap);
        if (ok) {
            driven.on_pgc_issued(VirtAddr{vaddr + 5 * 64},
                                 PhysAddr{vaddr + 5 * 64});
        }
        if (i % 7 == 0) {
            driven.on_l1d_demand_miss(VirtAddr{vaddr + 5 * 64});
        }
    }
    MokaFilter fresh(cfg);
    SnapshotWriter w(0);
    driven.save_state(w);  // opens filter.* sections itself
    const std::string bytes = w.finish();
    SnapshotReader r(bytes);
    fresh.restore_state(r);
    r.finish();
    SnapshotWriter w2(0);
    fresh.save_state(w2);
    EXPECT_EQ(w2.finish(), bytes);
}

// ------------------------------------------------- whole-machine tests

WorkloadSpec
pick(Family family)
{
    for (const WorkloadSpec &s : seen_workloads()) {
        if (s.family == family) {
            return s;
        }
    }
    ADD_FAILURE() << "family missing from roster";
    return seen_workloads().front();
}

MachineConfig
snap_config()
{
    return make_config(L1dPrefetcherKind::kBerti,
                       scheme_dripper(L1dPrefetcherKind::kBerti));
}

Machine
build_machine(const MachineConfig &cfg, const WorkloadSpec &spec)
{
    std::vector<WorkloadPtr> w;
    w.push_back(make_workload(spec));
    return Machine(cfg, std::move(w));
}

TEST(SnapshotMachine, SaveRestoreSaveIsByteIdentical)
{
    const MachineConfig cfg = snap_config();
    const WorkloadSpec spec = pick(Family::kCsr);
    Machine warmed = build_machine(cfg, spec);
    warmed.run(20'000);
    const std::string s1 = warmed.save_snapshot();

    Machine restored = build_machine(cfg, spec);
    restored.restore_snapshot(s1);
    EXPECT_EQ(restored.save_snapshot(), s1);
}

TEST(SnapshotMachine, RestoredMeasureMatchesStraightThrough)
{
    const MachineConfig cfg = snap_config();
    const WorkloadSpec spec = pick(Family::kCsr);

    // Straight through: warmup + measure on one machine.
    Machine straight = build_machine(cfg, spec);
    straight.run(20'000);
    const std::string snap = straight.save_snapshot();
    straight.start_measurement();
    straight.run(60'000);

    // Restored: fresh machine, restore the warmup state, measure.
    Machine resumed = build_machine(cfg, spec);
    resumed.restore_snapshot(snap);
    resumed.start_measurement();
    resumed.run(60'000);

    // Strongest possible equality: the full architectural state after
    // the measured region is byte-identical, not just the metrics.
    EXPECT_EQ(resumed.save_snapshot(), straight.save_snapshot());
    const RunMetrics a = straight.measured(0);
    const RunMetrics b = resumed.measured(0);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1d.misses, b.l1d.misses);
    EXPECT_EQ(a.llc.misses, b.llc.misses);
    EXPECT_EQ(a.pgc_issued, b.pgc_issued);
    EXPECT_EQ(a.pgc_dropped, b.pgc_dropped);
    EXPECT_EQ(a.spec_walks, b.spec_walks);
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
}

TEST(SnapshotMachine, ConfigMismatchRejected)
{
    const WorkloadSpec spec = pick(Family::kStream);
    Machine warmed = build_machine(snap_config(), spec);
    warmed.run(5'000);
    const std::string snap = warmed.save_snapshot();

    const MachineConfig other =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard());
    Machine fresh = build_machine(other, spec);
    try {
        fresh.restore_snapshot(snap);
        ADD_FAILURE() << "restored under a different machine config";
    } catch (const SnapshotError &e) {
        EXPECT_EQ(e.kind(), SnapshotErrorKind::kConfigMismatch);
    }
}

// ------------------------------------------------------- snapshot cache

TEST(SnapshotCacheTest, MissProducesThenDiskHit)
{
    const std::string dir = temp_dir("cache");
    int produced = 0;
    const auto produce = [&produced]() {
        ++produced;
        return tiny_snapshot();
    };
    {
        SnapshotCache cache(dir);
        SnapshotCache::FetchOutcome out;
        const SnapshotBlob blob = cache.fetch(1, produce, &out);
        ASSERT_NE(blob, nullptr);
        EXPECT_FALSE(out.hit);
        EXPECT_TRUE(out.saved);
        EXPECT_EQ(produced, 1);
        EXPECT_TRUE(std::filesystem::exists(cache.path_for(1)));
        EXPECT_EQ(cache.stats().misses, 1u);
        EXPECT_EQ(cache.stats().saves, 1u);
    }
    {
        // New cache instance: must hit from disk, not memory.
        SnapshotCache cache(dir);
        SnapshotCache::FetchOutcome out;
        const SnapshotBlob blob = cache.fetch(1, produce, &out);
        ASSERT_NE(blob, nullptr);
        EXPECT_TRUE(out.hit);
        EXPECT_EQ(produced, 1);  // not produced again
        EXPECT_EQ(cache.stats().hits, 1u);
        EXPECT_EQ(*blob, tiny_snapshot());
    }
}

TEST(SnapshotCacheTest, InProcessMemoization)
{
    const std::string dir = temp_dir("memo");
    SnapshotCache cache(dir);
    int produced = 0;
    for (int i = 0; i < 3; ++i) {
        (void)cache.fetch(5, [&produced]() {
            ++produced;
            return tiny_snapshot();
        });
    }
    EXPECT_EQ(produced, 1);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(SnapshotCacheTest, CorruptFileFallsBackToProduce)
{
    const std::string dir = temp_dir("corrupt");
    SnapshotCache cache(dir);
    {
        std::ofstream os(cache.path_for(9), std::ios::binary);
        os << "definitely not a snapshot";
    }
    int produced = 0;
    const SnapshotBlob blob = cache.fetch(9, [&produced]() {
        ++produced;
        return tiny_snapshot();
    });
    ASSERT_NE(blob, nullptr);
    EXPECT_EQ(produced, 1);
    EXPECT_EQ(cache.stats().invalid, 1u);
    // The corrupt file was dropped and replaced by the valid publish.
    std::ifstream is(cache.path_for(9), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes, tiny_snapshot());
}

TEST(SnapshotCacheTest, ProducerFailurePropagates)
{
    const std::string dir = temp_dir("fail");
    SnapshotCache cache(dir);
    EXPECT_THROW(
        (void)cache.fetch(3,
                          []() -> std::string {
                              throw JobError(JobErrorCode::kTimeout,
                                             "warmup hung");
                          }),
        JobError);
    // A later fetch may retry: the inflight entry was not poisoned.
    const SnapshotBlob blob = cache.fetch(3, []() { return tiny_snapshot(); });
    ASSERT_NE(blob, nullptr);
}

// ----------------------------------------------- runner + job taxonomy

TEST(SnapshotRunner, WarmRunMatchesColdRunExactly)
{
    const MachineConfig cfg = snap_config();
    const WorkloadSpec spec = pick(Family::kGather);
    RunConfig run;
    run.warmup_insts = 15'000;
    run.measure_insts = 40'000;

    const RunMetrics cold =
        run_single_workload(cfg, make_workload(spec), run, nullptr);

    const std::string dir = temp_dir("runner");
    SnapshotCache cache(dir);
    const WorkloadFactory factory = [&spec]() {
        return make_workload(spec);
    };
    // First call misses (produces + publishes), second hits from disk;
    // both must reproduce the cold metrics exactly.
    const RunMetrics missed = run_single_workload_snapshot(
        cfg, factory, run, nullptr, cache, /*warmup_key=*/77);
    const RunMetrics hit = run_single_workload_snapshot(
        cfg, factory, run, nullptr, cache, /*warmup_key=*/77);
    EXPECT_GE(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    for (const RunMetrics &warm : {missed, hit}) {
        EXPECT_EQ(warm.instructions, cold.instructions);
        EXPECT_EQ(warm.cycles, cold.cycles);
        EXPECT_EQ(warm.l1d.misses, cold.l1d.misses);
        EXPECT_EQ(warm.llc.misses, cold.llc.misses);
        EXPECT_EQ(warm.pgc_issued, cold.pgc_issued);
        EXPECT_EQ(warm.branch_mispredicts, cold.branch_mispredicts);
    }
}

TEST(SnapshotRunner, DifferentSchemesGetDifferentWarmupKeys)
{
    // Same workload + warmup under two schemes must not share a
    // snapshot: the second run must miss, not hit.
    const WorkloadSpec spec = pick(Family::kStream);
    RunConfig run;
    run.warmup_insts = 5'000;
    run.measure_insts = 10'000;
    const std::string dir = temp_dir("keys");
    SnapshotCache cache(dir);
    const WorkloadFactory factory = [&spec]() {
        return make_workload(spec);
    };
    (void)run_single_workload_snapshot(snap_config(), factory, run,
                                       nullptr, cache, 77);
    const MachineConfig other =
        make_config(L1dPrefetcherKind::kBerti, scheme_discard());
    (void)run_single_workload_snapshot(other, factory, run, nullptr,
                                       cache, 77);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SnapshotJobError, NameRoundTrip)
{
    EXPECT_STREQ(to_string(JobErrorCode::kSnapshotInvalid),
                 "snapshot_invalid");
    EXPECT_EQ(job_error_code_from("snapshot_invalid"),
              JobErrorCode::kSnapshotInvalid);
    EXPECT_FALSE(is_transient(JobErrorCode::kSnapshotInvalid));
}

TEST(SnapshotDefaults, WarmupBudgetUnified)
{
    // Satellite of the snapshot work: the single-core and multicore
    // entry points used to carry silently different warmup defaults.
    EXPECT_EQ(RunConfig{}.warmup_insts, kDefaultWarmupInsts);
    EXPECT_EQ(MulticoreConfig{}.warmup_insts, kDefaultWarmupInsts);
    EXPECT_EQ(kDefaultWarmupInsts, 200'000u);
}

}  // namespace
}  // namespace moka
