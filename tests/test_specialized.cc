/** @file Unit tests for prefetcher-specialized filter features. */
#include <gtest/gtest.h>

#include "filter/policies.h"
#include "prefetch/berti.h"
#include "prefetch/ipcp.h"

namespace moka {
namespace {

TEST(Specialized, EvalFormulas)
{
    FeatureInput in;
    in.pc = 0x400100;
    in.delta = 7;
    in.meta = 0x55;
    EXPECT_EQ(eval_specialized(SpecializedFeatureId::kMeta, in), 0x55u);
    EXPECT_EQ(eval_specialized(SpecializedFeatureId::kMetaXorDelta, in),
              0x55u ^ 7u);
    EXPECT_EQ(eval_specialized(SpecializedFeatureId::kMetaXorPc, in),
              0x55u ^ 0x400100u);
}

TEST(Specialized, Names)
{
    EXPECT_STREQ(specialized_feature_name(SpecializedFeatureId::kMeta),
                 "Meta");
    EXPECT_STREQ(
        specialized_feature_name(SpecializedFeatureId::kMetaXorDelta),
        "Meta^Delta");
    EXPECT_STREQ(
        specialized_feature_name(SpecializedFeatureId::kMetaXorPc),
        "Meta^PC");
}

TEST(Specialized, BertiExportsTimelinessMeta)
{
    BertiConfig cfg;
    cfg.window_accesses = 32;
    cfg.timely_latency = 50;
    Berti berti(cfg);
    std::vector<PrefetchRequest> out;
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        out.clear();
        PrefetchContext ctx;
        ctx.pc = 0x400100;
        ctx.vaddr = VirtAddr{0x100000 + Addr(i) * kBlockSize};
        ctx.now = now;
        berti.on_access(ctx, out);
        now += 100;
    }
    ASSERT_FALSE(out.empty());
    // A steady stream's selected deltas carry nonzero timely counts.
    EXPECT_GT(out[0].meta, 0u);
}

TEST(Specialized, IpcpExportsClassMeta)
{
    Ipcp ipcp(IpcpConfig{});
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.pc = 0x400200;
    ctx.vaddr = VirtAddr{0x100000};
    ctx.hit = false;
    ipcp.on_access(ctx, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].meta, 0u);  // NL class on fresh IP
    // Train CS (sparse regions, stride 3): meta becomes the CS class.
    for (int i = 1; i < 10; ++i) {
        out.clear();
        ctx.vaddr = VirtAddr{0x100000 + Addr(i) * 3 * kBlockSize};
        ipcp.on_access(ctx, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].meta, 1u);  // CS class
}

TEST(Specialized, FilterUsesMetaTables)
{
    MokaConfig cfg = dripper_config(L1dPrefetcherKind::kBerti);
    cfg.specialized_features = {SpecializedFeatureId::kMeta};
    MokaFilter f(cfg);
    // Storage grows by exactly one more weight table.
    MokaFilter plain(dripper_config(L1dPrefetcherKind::kBerti));
    EXPECT_EQ(f.storage_bits(),
              plain.storage_bits() + cfg.wt_entries * cfg.weight_bits);
}

TEST(Specialized, MetaSeparatesSamePcSameDelta)
{
    // Two populations identical in every program feature but meta:
    // only the specialized feature can separate them.
    MokaConfig cfg;
    cfg.name = "meta-only";
    cfg.specialized_features = {SpecializedFeatureId::kMeta};
    cfg.threshold.adaptive = false;
    cfg.threshold.t_static = 0;
    MokaFilter f(cfg);
    SystemSnapshot snap;
    // meta=1 -> useful; meta=2 -> useless, alternating.
    for (int i = 0; i < 40; ++i) {
        const Addr t1 = 0x100000 + Addr(i) * 2 * kPageSize;
        if (f.permit(0x1, VirtAddr{0x100000}, 5, VirtAddr{t1}, snap,
                     /*meta=*/1)) {
            f.on_pgc_issued(VirtAddr{t1}, PhysAddr{t1});
            f.on_pgc_first_use(PhysAddr{t1});
        } else {
            f.on_l1d_demand_miss(VirtAddr{t1});
        }
        const Addr t2 = t1 + kPageSize;
        if (f.permit(0x1, VirtAddr{0x100000}, 5, VirtAddr{t2}, snap,
                     /*meta=*/2)) {
            f.on_pgc_issued(VirtAddr{t2}, PhysAddr{t2});
            f.on_pgc_eviction(PhysAddr{t2}, false);
        }
    }
    EXPECT_TRUE(
        f.permit(0x1, VirtAddr{0x100000}, 5, VirtAddr{0x900000}, snap, 1));
    EXPECT_FALSE(
        f.permit(0x1, VirtAddr{0x100000}, 5, VirtAddr{0x901000}, snap, 2));
}

TEST(Specialized, SchemeFactory)
{
    const SchemeConfig s =
        scheme_dripper_specialized(L1dPrefetcherKind::kBerti);
    EXPECT_EQ(s.name, "DRIPPER+Meta");
    const FilterPtr f = s.make_filter();
    const auto *mf = dynamic_cast<const MokaFilter *>(f.get());
    ASSERT_NE(mf, nullptr);
    EXPECT_EQ(mf->config().specialized_features.size(), 2u);
}

}  // namespace
}  // namespace moka
