/** @file Unit tests for the SPP (L2C) prefetcher. */
#include <gtest/gtest.h>

#include "prefetch/spp.h"

namespace moka {
namespace {

std::vector<PrefetchRequest>
access(Spp &spp, Addr paddr)
{
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.vaddr = VirtAddr{paddr};  // SPP: physical stream via the adapter seam
    ctx.pc = 0x400100;
    spp.on_access(ctx, out);
    return out;
}

TEST(Spp, NoPredictionOnFreshPage)
{
    Spp spp(SppConfig{});
    EXPECT_TRUE(access(spp, 0x100000).empty());
}

TEST(Spp, LearnsConstantDeltaWithinPage)
{
    Spp spp(SppConfig{});
    std::vector<PrefetchRequest> out;
    // Several pages with the same +2-line pattern build signature
    // confidence.
    for (Addr page = 0; page < 16; ++page) {
        const Addr base = 0x100000 + page * kPageSize;
        for (unsigned i = 0; i < 20; ++i) {
            out = access(spp, base + Addr(i) * 2 * kBlockSize);
        }
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].delta, 2);
}

TEST(Spp, NeverCrossesPhysicalPage)
{
    Spp spp(SppConfig{});
    std::vector<PrefetchRequest> out;
    for (Addr page = 0; page < 16; ++page) {
        const Addr base = 0x200000 + page * kPageSize;
        for (unsigned i = 0; i < 30; ++i) {
            out = access(spp, base + Addr(i) * 2 * kBlockSize);
            for (const PrefetchRequest &r : out) {
                EXPECT_EQ(page_number(r.vaddr), page_number(VirtAddr{base}))
                    << "SPP crossed a physical page";
            }
        }
    }
}

TEST(Spp, LookaheadDepthBounded)
{
    SppConfig cfg;
    cfg.max_depth = 3;
    Spp spp(cfg);
    std::vector<PrefetchRequest> out;
    for (Addr page = 0; page < 16; ++page) {
        const Addr base = 0x300000 + page * kPageSize;
        for (unsigned i = 0; i < 30; ++i) {
            out = access(spp, base + Addr(i) * kBlockSize);
            EXPECT_LE(out.size(), 3u);
        }
    }
}

TEST(Spp, RandomOffsetsStayQuiet)
{
    Spp spp(SppConfig{});
    std::uint64_t x = 5;
    std::vector<PrefetchRequest> out;
    std::size_t emitted = 0;
    for (int i = 0; i < 3000; ++i) {
        x = x * 6364136223846793005ull + 1;
        out = access(spp, (x % (1u << 28)) & ~(kBlockSize - 1));
        emitted += out.size();
    }
    // Random pages produce almost no confident paths.
    EXPECT_LT(emitted, 100u);
}

}  // namespace
}  // namespace moka
