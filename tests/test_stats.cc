/** @file Unit tests for common/stats.h + histogram. */
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/stats.h"

namespace moka {
namespace {

TEST(AccessStats, MpkiAndMissRate)
{
    AccessStats s;
    s.accesses = 1000;
    s.misses = 50;
    EXPECT_DOUBLE_EQ(s.mpki(10000), 5.0);
    EXPECT_DOUBLE_EQ(s.miss_rate(), 0.05);
    EXPECT_DOUBLE_EQ(s.mpki(0), 0.0);
    AccessStats zero;
    EXPECT_DOUBLE_EQ(zero.miss_rate(), 0.0);
}

TEST(AccessStats, Subtraction)
{
    AccessStats a{100, 20}, b{40, 5};
    const AccessStats d = a - b;
    EXPECT_EQ(d.accesses, 60u);
    EXPECT_EQ(d.misses, 15u);
}

TEST(PrefetchStats, Accuracy)
{
    PrefetchStats p;
    EXPECT_DOUBLE_EQ(p.accuracy(), 0.0);
    p.useful = 30;
    p.useless = 10;
    EXPECT_DOUBLE_EQ(p.accuracy(), 0.75);
    p.pgc_useful = 1;
    p.pgc_useless = 3;
    EXPECT_DOUBLE_EQ(p.pgc_accuracy(), 0.25);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.1, 1.1, 1.1}), 1.1, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries are skipped, not poisoning the result.
    EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 1.0, -3.0}), 2.0);
}

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Percentile, Interpolation)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(FormatPct, SignAndPrecision)
{
    EXPECT_EQ(format_pct(0.0173), "+1.73%");
    EXPECT_EQ(format_pct(-0.025), "-2.50%");
    EXPECT_EQ(format_pct(0.0), "+0.00%");
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.9);   // bin 4
    h.add(-3.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 4
    h.add(5.0);   // bin 2
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(4), 2u);
    EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

}  // namespace
}  // namespace moka
