/** @file Unit tests for the classic IP-stride prefetcher. */
#include <gtest/gtest.h>

#include "prefetch/stride.h"

namespace moka {
namespace {

std::vector<PrefetchRequest>
access(StridePrefetcher &pf, Addr pc, Addr vaddr)
{
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.pc = pc;
    ctx.vaddr = VirtAddr{vaddr};
    pf.on_access(ctx, out);
    return out;
}

TEST(Stride, LearnsConstantStride)
{
    StridePrefetcher pf(StridePrefetcherConfig{});
    std::vector<PrefetchRequest> out;
    for (int i = 0; i < 6; ++i) {
        out = access(pf, 0x400100, 0x100000 + Addr(i) * 5 * kBlockSize);
    }
    ASSERT_EQ(out.size(), 2u);  // degree 2
    EXPECT_EQ(out[0].delta, 5);
    EXPECT_EQ(out[1].delta, 10);
}

TEST(Stride, QuietUntilConfident)
{
    StridePrefetcher pf(StridePrefetcherConfig{});
    EXPECT_TRUE(access(pf, 0x1, 0x100000).empty());
    EXPECT_TRUE(access(pf, 0x1, 0x100000 + 3 * kBlockSize).empty());
}

TEST(Stride, RandomPatternNeverFires)
{
    StridePrefetcher pf(StridePrefetcherConfig{});
    std::uint64_t x = 17;
    std::size_t emitted = 0;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1;
        emitted += access(pf, 0x2, (x % (1u << 28)) & ~63ull).size();
    }
    EXPECT_LT(emitted, 50u);
}

TEST(Stride, NegativeStrideSupported)
{
    StridePrefetcher pf(StridePrefetcherConfig{});
    std::vector<PrefetchRequest> out;
    const Addr base = 0x800000;
    for (int i = 0; i < 6; ++i) {
        out = access(pf, 0x3, base - Addr(i) * 2 * kBlockSize);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].delta, -2);
}

TEST(Stride, FactoryIntegration)
{
    const PrefetcherPtr pf =
        make_l1d_prefetcher(L1dPrefetcherKind::kStride);
    ASSERT_NE(pf, nullptr);
    EXPECT_EQ(pf->name(), "stride");
    EXPECT_EQ(parse_l1d_kind("stride"), L1dPrefetcherKind::kStride);
}

}  // namespace
}  // namespace moka
