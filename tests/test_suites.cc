/** @file Unit tests for the workload roster. */
#include <gtest/gtest.h>

#include <set>

#include "trace/suites.h"

namespace moka {
namespace {

TEST(Suites, RosterSizesMatchPaper)
{
    EXPECT_EQ(seen_workloads().size(), 218u);
    EXPECT_EQ(unseen_workloads().size(), 178u);
    EXPECT_FALSE(non_intensive_workloads().empty());
}

TEST(Suites, NamesUniqueAcrossSeenAndUnseen)
{
    std::set<std::string> names;
    for (const WorkloadSpec &s : seen_workloads()) {
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
    }
    for (const WorkloadSpec &s : unseen_workloads()) {
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
    }
}

TEST(Suites, SeedsUniqueAcrossRoster)
{
    std::set<std::uint64_t> seeds;
    for (const WorkloadSpec &s : seen_workloads()) {
        EXPECT_TRUE(seeds.insert(s.seed).second)
            << "seed collision at " << s.name;
    }
    for (const WorkloadSpec &s : unseen_workloads()) {
        EXPECT_TRUE(seeds.insert(s.seed).second)
            << "seed collision at " << s.name;
    }
}

TEST(Suites, EverySuitePresent)
{
    const auto names = suite_names();
    EXPECT_EQ(names.size(), 8u);
    const auto roster = seen_workloads();
    for (const std::string &suite : names) {
        EXPECT_FALSE(filter_suite(roster, suite).empty()) << suite;
    }
}

TEST(Suites, IntensiveFlagsConsistent)
{
    for (const WorkloadSpec &s : seen_workloads()) {
        EXPECT_TRUE(s.memory_intensive);
    }
    for (const WorkloadSpec &s : non_intensive_workloads()) {
        EXPECT_FALSE(s.memory_intensive);
    }
}

TEST(Suites, SampleEvenAndBounded)
{
    const auto roster = seen_workloads();
    const auto s = sample(roster, 24);
    EXPECT_EQ(s.size(), 24u);
    // Sampling preserves order and includes early + late entries.
    EXPECT_EQ(s.front().name, roster.front().name);
    std::set<std::string> names;
    for (const WorkloadSpec &w : s) {
        EXPECT_TRUE(names.insert(w.name).second);
    }
    // Oversampling returns the full roster.
    EXPECT_EQ(sample(roster, 10000).size(), roster.size());
}

TEST(Suites, WorkloadsInstantiateAndRun)
{
    const auto roster = sample(seen_workloads(), 9);
    for (const WorkloadSpec &spec : roster) {
        WorkloadPtr w = make_workload(spec);
        ASSERT_NE(w, nullptr) << spec.name;
        EXPECT_EQ(w->name(), spec.name);
        bool saw_mem = false;
        for (int i = 0; i < 2000; ++i) {
            const TraceInst inst = w->next();
            if (inst.op == OpClass::kLoad || inst.op == OpClass::kStore) {
                saw_mem = true;
                EXPECT_NE(inst.mem_addr, VirtAddr{0});
            }
        }
        EXPECT_TRUE(saw_mem) << spec.name;
    }
}

TEST(Suites, SameSpecGivesIdenticalStream)
{
    const WorkloadSpec spec = seen_workloads().front();
    WorkloadPtr a = make_workload(spec);
    WorkloadPtr b = make_workload(spec);
    for (int i = 0; i < 3000; ++i) {
        const TraceInst x = a->next();
        const TraceInst y = b->next();
        ASSERT_EQ(x.mem_addr, y.mem_addr);
        ASSERT_EQ(x.pc, y.pc);
    }
}

}  // namespace
}  // namespace moka
