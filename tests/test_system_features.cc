/** @file Unit tests for MOKA system features. */
#include <gtest/gtest.h>

#include "filter/system_features.h"

namespace moka {
namespace {

TEST(SystemFeatures, AllSixPresent)
{
    EXPECT_EQ(all_system_features().size(), 6u);
}

TEST(SystemFeatures, StlbMpkiActiveWhenLow)
{
    // DRIPPER's rationale: the sTLB MPKI feature participates in
    // phases with LOW sTLB pressure.
    SystemFeature f(default_system_feature(SystemFeatureId::kStlbMpki));
    SystemSnapshot snap;
    snap.stlb_mpki = 0.1;
    EXPECT_TRUE(f.active(snap));
    snap.stlb_mpki = 50.0;
    EXPECT_FALSE(f.active(snap));
}

TEST(SystemFeatures, StlbMissRateActiveWhenHigh)
{
    SystemFeature f(
        default_system_feature(SystemFeatureId::kStlbMissRate));
    SystemSnapshot snap;
    snap.stlb_miss_rate = 0.9;
    EXPECT_TRUE(f.active(snap));
    snap.stlb_miss_rate = 0.01;
    EXPECT_FALSE(f.active(snap));
}

TEST(SystemFeatures, WeightTrainsAndSaturates)
{
    SystemFeature f(default_system_feature(SystemFeatureId::kLlcMpki));
    EXPECT_EQ(f.weight(), 0);
    for (int i = 0; i < 40; ++i) {
        f.increment();
    }
    EXPECT_EQ(f.weight(), 15);
    for (int i = 0; i < 80; ++i) {
        f.decrement();
    }
    EXPECT_EQ(f.weight(), -16);
    EXPECT_EQ(f.storage_bits(), 5u);
}

TEST(SystemFeatures, NamesMatchTableOne)
{
    EXPECT_STREQ(system_feature_name(SystemFeatureId::kStlbMpki),
                 "sTLB MPKI");
    EXPECT_STREQ(system_feature_name(SystemFeatureId::kStlbMissRate),
                 "sTLB Miss Rate");
    EXPECT_STREQ(system_feature_name(SystemFeatureId::kL1dMpki),
                 "L1D MPKI");
    EXPECT_STREQ(system_feature_name(SystemFeatureId::kLlcMissRate),
                 "LLC Miss Rate");
}

/** Each feature reads exactly its own snapshot field. */
class SystemFeatureField
    : public ::testing::TestWithParam<SystemFeatureId>
{
};

TEST_P(SystemFeatureField, RespondsOnlyToOwnField)
{
    const SystemFeatureConfig cfg = default_system_feature(GetParam());
    SystemFeature f(cfg);
    SystemSnapshot low{};   // all zeros
    SystemSnapshot high{};
    high.l1d_mpki = high.llc_mpki = high.stlb_mpki = 1e6;
    high.l1d_miss_rate = high.llc_miss_rate = high.stlb_miss_rate = 1.0;
    // Exactly one of the two snapshots activates the feature.
    EXPECT_NE(f.active(low), f.active(high));
}

INSTANTIATE_TEST_SUITE_P(
    All, SystemFeatureField,
    ::testing::Values(SystemFeatureId::kL1dMpki,
                      SystemFeatureId::kL1dMissRate,
                      SystemFeatureId::kLlcMpki,
                      SystemFeatureId::kLlcMissRate,
                      SystemFeatureId::kStlbMpki,
                      SystemFeatureId::kStlbMissRate));

}  // namespace
}  // namespace moka
