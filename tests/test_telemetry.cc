/**
 * @file
 * Tests for the telemetry subsystem: registry thread-safety with
 * exact final counts (run under the tsan preset), timeseries /
 * sampler delta arithmetic against hand-computed values, epoch-hook
 * cadence, the golden Chrome trace_event JSON (parse + span nesting),
 * and the end-to-end run-scoped files.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "filter/policies.h"
#include "sim/runner.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"

namespace moka {
namespace {

/** Restore the global telemetry gate when a test flips it. */
class GateGuard
{
  public:
    GateGuard() : prev_(telemetry_enabled()) {}
    ~GateGuard() { set_telemetry_enabled(prev_); }

  private:
    bool prev_;
};

std::string
temp_file(const char *tag)
{
    return std::string(::testing::TempDir()) + "moka_tele_" + tag;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, InstrumentsFlattenInRegistrationOrder)
{
    MetricRegistry reg;
    reg.counter("reqs").add(5);
    reg.gauge("t_a").set(-2.5);
    reg.histogram("lat", {1.0, 10.0}).observe(0.5);
    reg.histogram("lat", {99.0}).observe(100.0);  // bounds fixed at first reg
    double probed = 7.0;
    reg.probe("ipc", [&probed] { return probed; });
    EXPECT_EQ(reg.size(), 4u);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 7u);  // 1 + 1 + (2 bounds + inf + count) + 1
    EXPECT_EQ(snap[0].name, "reqs");
    EXPECT_EQ(snap[0].value, 5.0);
    EXPECT_TRUE(snap[0].cumulative);
    EXPECT_EQ(snap[1].name, "t_a");
    EXPECT_EQ(snap[1].value, -2.5);
    EXPECT_FALSE(snap[1].cumulative);
    EXPECT_EQ(snap[2].name, "lat.le_1");
    EXPECT_EQ(snap[2].value, 1.0);  // the 0.5 sample
    EXPECT_EQ(snap[3].name, "lat.le_10");
    EXPECT_EQ(snap[3].value, 0.0);
    EXPECT_EQ(snap[4].name, "lat.le_inf");
    EXPECT_EQ(snap[4].value, 1.0);  // the 100.0 sample overflowed
    EXPECT_EQ(snap[5].name, "lat.count");
    EXPECT_EQ(snap[5].value, 2.0);
    EXPECT_EQ(snap[6].name, "ipc");
    EXPECT_EQ(snap[6].value, 7.0);
    probed = 9.0;
    EXPECT_EQ(reg.snapshot()[6].value, 9.0);  // probes read on snapshot
}

TEST(Registry, HistogramBucketsAreLeftOpenRightClosed)
{
    MetricHistogram h({0.0, 4.0});
    h.observe(-1.0);  // (-inf, 0]
    h.observe(0.0);   // boundary lands in its own bucket
    h.observe(0.1);   // (0, 4]
    h.observe(4.0);
    h.observe(4.1);  // overflow
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bound(0), 0.0);
    EXPECT_EQ(h.bound(1), 4.0);
    EXPECT_TRUE(std::isinf(h.bound(2)));
}

TEST(Registry, ConcurrentUpdatesKeepExactCounts)
{
    MetricRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kIters = 10'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Half the threads race on registration of the same
            // names; all race on the updates.
            Counter &hits = reg.counter("hits");
            MetricHistogram &h = reg.histogram("dist", {0.5});
            Gauge &g = reg.gauge("last");
            for (int i = 0; i < kIters; ++i) {
                hits.add(1);
                h.observe(t % 2 == 0 ? 0.0 : 1.0);
                g.set(static_cast<double>(i));
                reg.counter("slow_path").add(2);
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_EQ(reg.counter("hits").value(), std::uint64_t(kThreads) * kIters);
    EXPECT_EQ(reg.counter("slow_path").value(),
              2u * std::uint64_t(kThreads) * kIters);
    MetricHistogram &h = reg.histogram("dist", {});
    EXPECT_EQ(h.count(0), std::uint64_t(kThreads / 2) * kIters);
    EXPECT_EQ(h.count(1), std::uint64_t(kThreads / 2) * kIters);
    EXPECT_EQ(reg.size(), 4u);
}

// ---------------------------------------------------------------------------
// Timeseries + samplers
// ---------------------------------------------------------------------------

TEST(Timeseries, ColumnsFreezeAndRoundTripThroughCsv)
{
    Timeseries ts;
    ts.append({{"a", 1.0}, {"b", 2.5}});
    ts.append({{"a", 3.0}, {"b", -1.0}});
    ASSERT_EQ(ts.columns().size(), 2u);
    EXPECT_EQ(ts.rows(), 2u);
    EXPECT_EQ(ts.at(1, 0), 3.0);
    EXPECT_EQ(ts.at(1, 1), -1.0);

    const std::string path = temp_file("series.csv");
    ASSERT_TRUE(ts.write_csv(path));
    std::ifstream is(path);
    std::string header, row0, row1;
    ASSERT_TRUE(std::getline(is, header));
    ASSERT_TRUE(std::getline(is, row0));
    ASSERT_TRUE(std::getline(is, row1));
    EXPECT_EQ(header, "a,b");
    EXPECT_EQ(row0, "1,2.5");
    EXPECT_EQ(row1, "3,-1");
    std::remove(path.c_str());
}

TEST(RegistrySampler, EmitsHandComputedDeltas)
{
    MetricRegistry reg;
    Counter &c = reg.counter("events");
    Gauge &g = reg.gauge("level");
    MetricHistogram &h = reg.histogram("w", {0.0});
    RegistrySampler sampler(&reg);

    c.add(5);
    g.set(3.5);
    h.observe(-1.0);
    std::vector<TimeseriesCell> row;
    sampler.sample_into(row);
    ASSERT_EQ(row.size(), 5u);  // counter, gauge, 2 buckets, count
    EXPECT_EQ(row[0].first, "events");
    EXPECT_EQ(row[0].second, 5.0);  // first sample: delta from zero
    EXPECT_EQ(row[1].second, 3.5);
    EXPECT_EQ(row[2].second, 1.0);  // w.le_0
    EXPECT_EQ(row[4].second, 1.0);  // w.count

    c.add(7);
    h.observe(1.0);
    row.clear();
    sampler.sample_into(row);
    EXPECT_EQ(row[0].second, 7.0);  // 12 total, delta 7
    EXPECT_EQ(row[1].second, 3.5);  // gauges stay raw
    EXPECT_EQ(row[2].second, 0.0);
    EXPECT_EQ(row[3].second, 1.0);  // w.le_inf moved this epoch

    row.clear();
    sampler.sample_into(row);
    EXPECT_EQ(row[0].second, 0.0);  // idle epoch: all deltas zero
    EXPECT_EQ(row[4].second, 0.0);
}

TEST(EpochSampler, FiresOncePerCadenceWindow)
{
    std::vector<std::uint64_t> fired;
    EpochSampler hook(100, [&fired](std::uint64_t s) { fired.push_back(s); });
    for (std::uint64_t s = 1; s <= 1000; ++s) {
        hook.on_tick(s);
    }
    // Arms at `cadence` and re-arms at fire-step + cadence.
    const std::vector<std::uint64_t> expected = {100, 200, 300, 400, 500,
                                                 600, 700, 800, 900, 1000};
    EXPECT_EQ(fired, expected);
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

TEST(Trace, GoldenJsonMatchesByteForByte)
{
    Tracer tracer(16);
    tracer.register_process(1, "job-engine");
    tracer.register_thread(1, 0, "worker-0");
    tracer.complete(1, 0, "job 0", 100, 400, "{\"status\":\"completed\"}");
    tracer.counter(2, 0, "c0.T_a", 120, "T_a", 3.0);
    tracer.complete(1, 0, "measure", 150, 200);
    tracer.instant(1, 0, "retry", 300, "{\"attempt\":2}");

    std::ostringstream os;
    tracer.write_json(os);
    const std::string golden =
        "{\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"ts\":0,\"args\":{\"name\":\"job-engine\"}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"ts\":0,\"args\":{\"name\":\"worker-0\"}},\n"
        "{\"name\":\"job 0\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":100,"
        "\"dur\":400,\"args\":{\"status\":\"completed\"}},\n"
        "{\"name\":\"c0.T_a\",\"ph\":\"C\",\"pid\":2,\"tid\":0,\"ts\":120,"
        "\"args\":{\"T_a\":3}},\n"
        "{\"name\":\"measure\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":150,"
        "\"dur\":200},\n"
        "{\"name\":\"retry\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":300,"
        "\"s\":\"t\",\"args\":{\"attempt\":2}}\n"
        "]}\n";
    EXPECT_EQ(os.str(), golden);
}

/** Minimal line-wise event for the structural checks. */
struct ParsedEvent
{
    char ph = '?';
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
};

std::uint64_t
json_u64(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    return at == std::string::npos
               ? 0
               : std::strtoull(line.c_str() + at + needle.size(), nullptr,
                               10);
}

std::vector<ParsedEvent>
parse_trace(const std::string &json)
{
    std::istringstream is(json);
    std::string line;
    std::vector<ParsedEvent> events;
    EXPECT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "{\"traceEvents\":[");
    while (std::getline(is, line) && line != "]}") {
        EXPECT_EQ(line.front(), '{');
        const std::size_t ph = line.find("\"ph\":\"");
        EXPECT_NE(ph, std::string::npos) << line;
        ParsedEvent e;
        e.ph = line[ph + 6];
        e.ts = json_u64(line, "ts");
        e.dur = json_u64(line, "dur");
        e.pid = static_cast<std::uint32_t>(json_u64(line, "pid"));
        e.tid = static_cast<std::uint32_t>(json_u64(line, "tid"));
        events.push_back(e);
    }
    EXPECT_EQ(line, "]}");
    return events;
}

TEST(Trace, SpansParseAndNestProperly)
{
    Tracer tracer(64);
    tracer.register_process(1, "engine");
    // Parent span with two children, plus a sibling span after it.
    tracer.complete(1, 0, "job", 100, 900);
    tracer.complete(1, 0, "warmup", 110, 300);
    tracer.complete(1, 0, "measure", 450, 500);
    tracer.complete(1, 0, "next job", 1200, 100);
    std::ostringstream os;
    tracer.write_json(os);

    const auto events = parse_trace(os.str());
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events[0].ph, 'M');

    std::vector<ParsedEvent> spans;
    for (const ParsedEvent &e : events) {
        if (e.ph == 'X') {
            spans.push_back(e);
        }
    }
    ASSERT_EQ(spans.size(), 4u);
    // Emitted sorted by begin timestamp.
    for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].ts, spans[i - 1].ts);
    }
    // On one (pid, tid) track, spans must be properly nested: any two
    // either disjoint or one inside the other (Perfetto rejects
    // partial overlap).
    for (std::size_t i = 0; i < spans.size(); ++i) {
        for (std::size_t j = i + 1; j < spans.size(); ++j) {
            const auto &a = spans[i];
            const auto &b = spans[j];
            const bool disjoint =
                a.ts + a.dur <= b.ts || b.ts + b.dur <= a.ts;
            const bool a_in_b =
                b.ts <= a.ts && a.ts + a.dur <= b.ts + b.dur;
            const bool b_in_a =
                a.ts <= b.ts && b.ts + b.dur <= a.ts + a.dur;
            EXPECT_TRUE(disjoint || a_in_b || b_in_a)
                << "spans " << i << " and " << j << " partially overlap";
        }
    }
}

TEST(Trace, RingDropsOldestAndCountsLosses)
{
    Tracer tracer(4);
    for (int i = 0; i < 6; ++i) {
        tracer.complete(0, 0, "e" + std::to_string(i),
                        static_cast<std::uint64_t>(i), 1);
    }
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    std::ostringstream os;
    tracer.write_json(os);
    // Oldest two were overwritten; the rest survive in order.
    EXPECT_EQ(os.str().find("\"e0\""), std::string::npos);
    EXPECT_EQ(os.str().find("\"e1\""), std::string::npos);
    EXPECT_NE(os.str().find("\"e2\""), std::string::npos);
    EXPECT_NE(os.str().find("\"e5\""), std::string::npos);
}

TEST(Trace, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(Tracer::escape("a\"b\\c\nd\te\rf"),
              "a\\\"b\\\\c\\nd\\te\\rf");
    EXPECT_EQ(Tracer::escape(std::string(1, '\x01')), "\\u0001");
}

// ---------------------------------------------------------------------------
// Filter telemetry plumbing
// ---------------------------------------------------------------------------

TEST(FilterTelemetry, SumBucketsMatchBounds)
{
    // kSumBounds = {-12, -8, -4, 0, 4, 8, 12}: bucket i holds
    // w_final <= bound[i] (first match), bucket 7 is overflow.
    EXPECT_EQ(FilterTelemetry::sum_bucket(-100), 0u);
    EXPECT_EQ(FilterTelemetry::sum_bucket(-12), 0u);
    EXPECT_EQ(FilterTelemetry::sum_bucket(-11), 1u);
    EXPECT_EQ(FilterTelemetry::sum_bucket(0), 3u);
    EXPECT_EQ(FilterTelemetry::sum_bucket(1), 4u);
    EXPECT_EQ(FilterTelemetry::sum_bucket(12), 6u);
    EXPECT_EQ(FilterTelemetry::sum_bucket(13), 7u);
}

TEST(FilterTelemetry, GateTogglesRuntimeCollection)
{
#if MOKASIM_TELEMETRY_BUILD
    GateGuard guard;
    set_telemetry_enabled(true);
    EXPECT_TRUE(telemetry_enabled());
    set_telemetry_enabled(false);
    EXPECT_FALSE(telemetry_enabled());
#else
    set_telemetry_enabled(true);
    EXPECT_FALSE(telemetry_enabled());  // compiled out: always off
#endif
}

// ---------------------------------------------------------------------------
// End-to-end: run-scoped telemetry files
// ---------------------------------------------------------------------------

TEST(RunTelemetry, InertWithoutSession)
{
    ScopedRunTelemetry scoped(nullptr, nullptr, "x");
    EXPECT_FALSE(scoped.active());
    EXPECT_EQ(scoped.hook(nullptr), nullptr);
    bool ran = false;
    scoped.span("warmup", [&ran] { ran = true; });
    EXPECT_TRUE(ran);  // spans still execute their body
}

TEST(RunTelemetry, WritesEpochFilesAndTrace)
{
#if !MOKASIM_TELEMETRY_BUILD
    GTEST_SKIP() << "telemetry compiled out";
#endif
    GateGuard guard;
    const std::string dir = temp_file("run_dir");
    const std::string trace = dir + "/run.trace.json";
    const RunConfig run{20'000, 80'000};
    const MachineConfig cfg =
        make_config(L1dPrefetcherKind::kBerti,
                    scheme_dripper(L1dPrefetcherKind::kBerti));
    {
        TelemetrySession session(dir, trace);
        EXPECT_TRUE(session.active());
        EXPECT_TRUE(telemetry_enabled());
        const RunMetrics m = run_single_workload(
            cfg, make_workload(seen_workloads().front()), run, nullptr,
            nullptr, &session, "wl.dripper", 3);
        EXPECT_EQ(m.instructions, run.measure_insts);
        EXPECT_FALSE(session.flush().empty());
    }

    std::ifstream csv(dir + "/wl.dripper.epochs.csv");
    ASSERT_TRUE(csv.good());
    std::string header, row;
    ASSERT_TRUE(std::getline(csv, header));
    EXPECT_NE(header.find("c0.ipc"), std::string::npos);
    EXPECT_NE(header.find("c0.t_a"), std::string::npos);
    EXPECT_NE(header.find("c0.pgc_accuracy"), std::string::npos);
    EXPECT_TRUE(std::getline(csv, row));  // at least the final sample

    std::ifstream tr(trace);
    ASSERT_TRUE(tr.good());
    std::stringstream buf;
    buf << tr.rdbuf();
    EXPECT_NE(buf.str().find("\"warmup\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"measure\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"c0.T_a\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"pid\":3"), std::string::npos);
}

TEST(RunTelemetry, LabelSanitizerKeepsFileNamesSafe)
{
    EXPECT_EQ(TelemetrySession::sanitize_label("mix0/dis card:*?"),
              "mix0_dis_card___");
    EXPECT_EQ(TelemetrySession::sanitize_label("gap.csr.0-x_1"),
              "gap.csr.0-x_1");
}

}  // namespace
}  // namespace moka
