/** @file Unit tests for the FDP-style throttler. */
#include <gtest/gtest.h>

#include "prefetch/next_line.h"
#include "prefetch/throttle.h"

namespace moka {
namespace {

/** Inner prefetcher emitting a fixed fan of candidates per trigger. */
class FanPrefetcher : public Prefetcher
{
  public:
    explicit FanPrefetcher(unsigned fan) : fan_(fan) {}

    void
    on_access(const PrefetchContext &ctx,
              std::vector<PrefetchRequest> &out) override
    {
        for (unsigned d = 1; d <= fan_; ++d) {
            PrefetchRequest r;
            r.vaddr = block_addr(ctx.vaddr) + d * kBlockSize;
            r.delta = d;
            out.push_back(r);
        }
    }

    const std::string &name() const override { return name_; }

  private:
    unsigned fan_;
    std::string name_ = "fan";
};

ThrottleConfig
quick()
{
    ThrottleConfig cfg;
    cfg.interval_fills = 32;
    return cfg;
}

void
drive_interval(ThrottledPrefetcher &t, bool useful, bool late)
{
    for (int i = 0; i < 32; ++i) {
        t.on_feedback(useful, late);
        t.on_fill(VirtAddr{0x1000}, 0, /*was_prefetch=*/true);
    }
}

TEST(Throttle, LevelCapsCandidates)
{
    ThrottledPrefetcher t(std::make_unique<FanPrefetcher>(6), quick());
    std::vector<PrefetchRequest> out;
    PrefetchContext ctx;
    ctx.vaddr = VirtAddr{0x100000};
    t.on_access(ctx, out);
    EXPECT_EQ(out.size(), 2u);  // initial level 2
}

TEST(Throttle, RampsUpWhenAccurateAndLate)
{
    ThrottledPrefetcher t(std::make_unique<FanPrefetcher>(6), quick());
    drive_interval(t, /*useful=*/true, /*late=*/true);
    EXPECT_EQ(t.level(), 3u);
    drive_interval(t, true, true);
    EXPECT_EQ(t.level(), 4u);
    drive_interval(t, true, true);
    EXPECT_EQ(t.level(), 4u);  // saturates at cfg.levels
}

TEST(Throttle, RampsDownWhenInaccurate)
{
    ThrottledPrefetcher t(std::make_unique<FanPrefetcher>(6), quick());
    drive_interval(t, /*useful=*/false, /*late=*/false);
    EXPECT_EQ(t.level(), 1u);
    drive_interval(t, false, false);
    EXPECT_EQ(t.level(), 1u);  // floor
}

TEST(Throttle, HoldsWhenAccurateAndTimely)
{
    ThrottledPrefetcher t(std::make_unique<FanPrefetcher>(6), quick());
    drive_interval(t, /*useful=*/true, /*late=*/false);
    EXPECT_EQ(t.level(), 2u);
}

TEST(Throttle, SmallWindowsIgnored)
{
    ThrottleConfig cfg = quick();
    ThrottledPrefetcher t(std::make_unique<FanPrefetcher>(6), cfg);
    // Fewer than 16 resolved outcomes: level must not move.
    for (int i = 0; i < 8; ++i) {
        t.on_feedback(false, false);
    }
    for (int i = 0; i < 32; ++i) {
        t.on_fill(VirtAddr{0x1000}, 0, true);
    }
    EXPECT_EQ(t.level(), 2u);
}

TEST(Throttle, NamePrefixed)
{
    ThrottledPrefetcher t(std::make_unique<NextLine>(1), quick());
    EXPECT_EQ(t.name(), "fdp+nl");
}

}  // namespace
}  // namespace moka
