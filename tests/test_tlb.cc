/** @file Unit tests for the TLB model. */
#include <gtest/gtest.h>

#include "vmem/tlb.h"

namespace moka {
namespace {

TlbConfig
tiny_config()
{
    TlbConfig cfg;
    cfg.name = "test";
    cfg.sets = 2;
    cfg.ways = 2;
    cfg.large_sets = 1;
    cfg.large_ways = 2;
    cfg.latency = 3;
    return cfg;
}

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb(tiny_config());
    const VirtAddr va{0x12345678};
    Tlb::Result r = tlb.lookup(va, 0, true);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.done, 3u);
    tlb.fill(va, PhysAddr{0x9000}, false, false);
    r = tlb.lookup(va, 10, true);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.page_base, PhysAddr{0x9000});
    EXPECT_FALSE(r.large);
}

TEST(Tlb, DemandAndProbeStatsSplit)
{
    Tlb tlb(tiny_config());
    tlb.lookup(VirtAddr{0x1000}, 0, true);
    tlb.lookup(VirtAddr{0x2000}, 0, false);
    tlb.lookup(VirtAddr{0x3000}, 0, false);
    EXPECT_EQ(tlb.demand_stats().accesses, 1u);
    EXPECT_EQ(tlb.demand_stats().misses, 1u);
    EXPECT_EQ(tlb.probe_stats().accesses, 2u);
    EXPECT_EQ(tlb.probe_stats().misses, 2u);
}

TEST(Tlb, LargePageEntry)
{
    Tlb tlb(tiny_config());
    const VirtAddr va{Addr{5} * kLargePageSize + 0x1234};
    tlb.fill(va, PhysAddr{Addr{5} * kLargePageSize + (Addr{1} << 30)},
             true, false);
    // Any address in the same 2MB region hits the large entry.
    const Tlb::Result r =
        tlb.lookup(VirtAddr{Addr{5} * kLargePageSize + 0xFFFFF}, 0, true);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.large);
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(tiny_config());
    // sets=2: pages with equal parity collide.
    tlb.fill(VirtAddr{0 * kPageSize}, PhysAddr{0x1000}, false, false);
    tlb.fill(VirtAddr{2 * kPageSize}, PhysAddr{0x2000}, false, false);
    // Touch page 0 so page 2 is LRU.
    tlb.lookup(VirtAddr{0}, 0, true);
    tlb.fill(VirtAddr{4 * kPageSize}, PhysAddr{0x3000}, false, false);  // evicts page 2
    EXPECT_TRUE(tlb.lookup(VirtAddr{0}, 0, true).hit);
    EXPECT_FALSE(tlb.lookup(VirtAddr{2 * kPageSize}, 0, true).hit);
    EXPECT_TRUE(tlb.lookup(VirtAddr{4 * kPageSize}, 0, true).hit);
}

TEST(Tlb, PrefetchFillsCounted)
{
    Tlb tlb(tiny_config());
    tlb.fill(VirtAddr{0x1000}, PhysAddr{0x9000}, false, true);
    tlb.fill(VirtAddr{0x2000}, PhysAddr{0xA000}, false, false);
    EXPECT_EQ(tlb.prefetch_fills(), 1u);
}

TEST(Tlb, PrefetchFillStillPollutes)
{
    // A fill from a page-cross prefetch occupies a real entry and can
    // evict demand translations — the pollution channel of the paper.
    Tlb tlb(tiny_config());
    tlb.fill(VirtAddr{0 * kPageSize}, PhysAddr{0x1000}, false, false);
    tlb.fill(VirtAddr{2 * kPageSize}, PhysAddr{0x2000}, false, false);
    tlb.lookup(VirtAddr{2 * kPageSize}, 0, true);  // make page 0 LRU
    tlb.fill(VirtAddr{4 * kPageSize}, PhysAddr{0x3000}, false, true);  // prefetch fill
    EXPECT_FALSE(tlb.lookup(VirtAddr{0}, 0, true).hit);
}

}  // namespace
}  // namespace moka
