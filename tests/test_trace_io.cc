/** @file Unit tests for trace recording/replay. */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/suites.h"
#include "trace/trace_io.h"

namespace moka {
namespace {

std::string
temp_path(const char *tag)
{
    return std::string(::testing::TempDir()) + "moka_" + tag + ".trc";
}

TEST(TraceIo, RoundTripPreservesStream)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("roundtrip");

    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 5000));

    WorkloadPtr replay = open_trace(path);
    ASSERT_NE(replay, nullptr);
    WorkloadPtr reference = make_workload(spec);
    for (int i = 0; i < 5000; ++i) {
        const TraceInst a = reference->next();
        const TraceInst b = replay->next();
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
        ASSERT_EQ(a.mem_addr, b.mem_addr);
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.target, b.target);
        ASSERT_EQ(a.dep_load, b.dep_load);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayWrapsAround)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("wrap");
    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 100));

    WorkloadPtr replay = open_trace(path);
    ASSERT_NE(replay, nullptr);
    std::vector<Addr> first_pass;
    for (int i = 0; i < 100; ++i) {
        first_pass.push_back(replay->next().pc);
    }
    // The 101st instruction replays the 1st.
    EXPECT_EQ(replay->next().pc, first_pass[0]);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNull)
{
    EXPECT_EQ(open_trace("/nonexistent/path.trc"), nullptr);
}

TEST(TraceIo, CorruptHeaderRejected)
{
    const std::string path = temp_path("corrupt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACE-AT-ALL", f);
    std::fclose(f);
    EXPECT_EQ(open_trace(path), nullptr);
    std::remove(path.c_str());
}

TEST(TraceIo, LengthReported)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("len");
    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 1234));
    TraceFileWorkload trace(path);
    EXPECT_EQ(trace.length(), 1234u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace moka
