/** @file Unit tests for trace recording/replay. */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/jobs/faults.h"
#include "trace/suites.h"
#include "trace/trace_io.h"

namespace moka {
namespace {

std::string
temp_path(const char *tag)
{
    return std::string(::testing::TempDir()) + "moka_" + tag + ".trc";
}

TEST(TraceIo, RoundTripPreservesStream)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("roundtrip");

    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 5000));

    WorkloadPtr replay = open_trace(path);
    ASSERT_NE(replay, nullptr);
    WorkloadPtr reference = make_workload(spec);
    for (int i = 0; i < 5000; ++i) {
        const TraceInst a = reference->next();
        const TraceInst b = replay->next();
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
        ASSERT_EQ(a.mem_addr, b.mem_addr);
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.target, b.target);
        ASSERT_EQ(a.dep_load, b.dep_load);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayWrapsAround)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("wrap");
    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 100));

    WorkloadPtr replay = open_trace(path);
    ASSERT_NE(replay, nullptr);
    std::vector<Addr> first_pass;
    for (int i = 0; i < 100; ++i) {
        first_pass.push_back(replay->next().pc);
    }
    // The 101st instruction replays the 1st.
    EXPECT_EQ(replay->next().pc, first_pass[0]);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNull)
{
    EXPECT_EQ(open_trace("/nonexistent/path.trc"), nullptr);
}

TEST(TraceIo, CorruptHeaderRejected)
{
    const std::string path = temp_path("corrupt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACE-AT-ALL", f);
    std::fclose(f);
    EXPECT_EQ(open_trace(path), nullptr);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Malformed-trace corpus: every damage mode maps to a classified
// TraceIoStatus with a usable message, never a crash or a silent null.
// ---------------------------------------------------------------------------

namespace {

std::string
damaged_trace(const char *tag, TraceFault fault, std::uint64_t seed)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path(tag);
    WorkloadPtr source = make_workload(spec);
    EXPECT_TRUE(record_trace(path, *source, 64));
    EXPECT_TRUE(corrupt_trace_file(path, fault, seed));
    return path;
}

}  // namespace

TEST(TraceIoCorpus, BitFlippedMagicIsBadHeader)
{
    const std::string path =
        damaged_trace("flipmagic", TraceFault::kBitFlipMagic, 5);
    const TraceOpenResult r = open_trace_checked(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kBadHeader);
    EXPECT_NE(r.message.find("magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoCorpus, TruncatedHeaderIsTruncated)
{
    const std::string path =
        damaged_trace("cuthdr", TraceFault::kTruncateHeader, 5);
    const TraceOpenResult r = open_trace_checked(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kTruncated);
    std::remove(path.c_str());
}

TEST(TraceIoCorpus, TruncatedRecordAtEofIsTruncated)
{
    const std::string path =
        damaged_trace("cutrec", TraceFault::kTruncateRecords, 5);
    const TraceOpenResult r = open_trace_checked(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kTruncated);
    // The message names the promised and found record counts.
    EXPECT_NE(r.message.find("promises 64"), std::string::npos);
    EXPECT_NE(r.message.find("found 63"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoCorpus, MissingFileIsClassifiedDistinctly)
{
    const TraceOpenResult r = open_trace_checked("/nonexistent/path.trc");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kFileMissing);
}

TEST(TraceIoCorpus, ImplausibleRecordCountRejectedWithoutAllocating)
{
    // A flipped count byte must not become a terabyte allocation.
    const std::string path = temp_path("hugecount");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("MOKATRC1", 8, 1, f);
    const std::uint64_t count = ~std::uint64_t{0};
    std::fwrite(&count, sizeof(count), 1, f);
    std::fclose(f);
    const TraceOpenResult r = open_trace_checked(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kBadHeader);
    EXPECT_NE(r.message.find("implausible"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIoCorpus, EmptyTraceIsClassified)
{
    const std::string path = temp_path("empty");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("MOKATRC1", 8, 1, f);
    const std::uint64_t count = 0;
    std::fwrite(&count, sizeof(count), 1, f);
    std::fclose(f);
    const TraceOpenResult r = open_trace_checked(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kEmpty);
    std::remove(path.c_str());
}

TEST(TraceIoCorpus, BitFlippedBodyStillLoads)
{
    // Body damage is not detectable without checksums; the classified
    // surface guarantees it either loads or fails cleanly -- here the
    // header is intact so the stream loads with the damaged byte.
    const std::string path =
        damaged_trace("flipbody", TraceFault::kBitFlipBody, 5);
    const TraceOpenResult r = open_trace_checked(path);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.status, TraceIoStatus::kOk);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Block decoder: the ring must be invisible — any ring size yields the
// same stream, across wrap-around, a short final block, and skip().
// ---------------------------------------------------------------------------

TEST(TraceIoDecoder, TinyRingMatchesFullStreamAcrossWrap)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("ringwrap");
    WorkloadPtr source = make_workload(spec);
    // 100 records with a 7-record ring: 15 blocks, the pass boundary
    // lands mid-ring on later laps.
    ASSERT_TRUE(record_trace(path, *source, 100));

    TraceFileWorkload ringed(path, /*block_records=*/7);
    TraceFileWorkload plain(path);
    for (int i = 0; i < 350; ++i) {  // 3.5 passes
        const TraceInst a = plain.next();
        const TraceInst b = ringed.next();
        ASSERT_EQ(a.pc, b.pc) << "instruction " << i;
        ASSERT_EQ(a.mem_addr, b.mem_addr) << "instruction " << i;
        ASSERT_EQ(static_cast<int>(a.op), static_cast<int>(b.op));
    }
    std::remove(path.c_str());
}

TEST(TraceIoDecoder, ShortFinalBlockServesExactly)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("shortblock");
    WorkloadPtr source = make_workload(spec);
    // 10 records, ring of 8: the second block holds only 2 records and
    // the decoder must wrap after them, not after a full ring.
    ASSERT_TRUE(record_trace(path, *source, 10));

    TraceFileWorkload trace(path, /*block_records=*/8);
    std::vector<Addr> first_pass;
    for (int i = 0; i < 10; ++i) {
        first_pass.push_back(trace.next().pc);
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(trace.next().pc, first_pass[i]) << "lap 2, inst " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceIoDecoder, SkipRepositionsMidBlock)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("skipmid");
    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 100));

    // Reference stream positions 0..: skip must land exactly where
    // the equivalent number of next() calls would have.
    TraceFileWorkload reference(path, /*block_records=*/16);
    for (int i = 0; i < 37; ++i) {
        (void)reference.next();
    }
    const Addr expect37 = reference.next().pc;

    TraceFileWorkload seek(path, /*block_records=*/16);
    (void)seek.next();  // consume into the first block, then skip
    seek.skip(36);      // mid-block re-position to logical index 37
    EXPECT_EQ(seek.next().pc, expect37);

    // Skip across the wrap boundary: 38 served + 62 skipped = 100,
    // which is the first record again.
    TraceFileWorkload wrapseek(path, /*block_records=*/16);
    const Addr first = wrapseek.next().pc;
    wrapseek.skip(99);
    EXPECT_EQ(wrapseek.next().pc, first);

    // Default-skip (decode-and-drop) and seek-skip agree.
    TraceFileWorkload a(path, /*block_records=*/16);
    TraceFileWorkload b(path, /*block_records=*/16);
    for (int i = 0; i < 53; ++i) {
        (void)a.next();
    }
    b.skip(53);
    for (int i = 0; i < 60; ++i) {
        ASSERT_EQ(a.next().pc, b.next().pc) << "post-skip inst " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceIo, LengthReported)
{
    const WorkloadSpec spec = seen_workloads().front();
    const std::string path = temp_path("len");
    WorkloadPtr source = make_workload(spec);
    ASSERT_TRUE(record_trace(path, *source, 1234));
    TraceFileWorkload trace(path);
    EXPECT_EQ(trace.length(), 1234u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace moka
