/** @file Unit tests for the vUB/pUB update buffers. */
#include <gtest/gtest.h>

#include "audit/access.h"
#include "filter/update_buffer.h"

namespace moka {
namespace {

VirtDecisionRecord
rec(Addr block, std::uint8_t mask = 0)
{
    VirtDecisionRecord r;
    r.block = VirtAddr{block};
    r.num_features = 2;
    r.indexes[0] = static_cast<std::uint32_t>(block & 0x3FF);
    r.indexes[1] = 7;
    r.system_mask = mask;
    return r;
}

TEST(UpdateBuffer, InsertThenTake)
{
    VirtUpdateBuffer ub(4);
    ub.insert(rec(0x1000, 0b01));
    VirtDecisionRecord out;
    EXPECT_TRUE(ub.take(VirtAddr{0x1000}, out));
    EXPECT_EQ(out.block, VirtAddr{0x1000});
    EXPECT_EQ(out.system_mask, 0b01);
    EXPECT_EQ(out.num_features, 2);
    // Second take misses: records are consumed.
    EXPECT_FALSE(ub.take(VirtAddr{0x1000}, out));
}

TEST(UpdateBuffer, FifoEvictionWhenFull)
{
    VirtUpdateBuffer ub(2);
    ub.insert(rec(0x1));
    ub.insert(rec(0x2));
    ub.insert(rec(0x3));  // evicts 0x1
    VirtDecisionRecord out;
    EXPECT_FALSE(ub.take(VirtAddr{0x1}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x2}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x3}, out));
}

TEST(UpdateBuffer, DuplicateKeyRefreshes)
{
    VirtUpdateBuffer ub(2);
    ub.insert(rec(0x1, 0b01));
    ub.insert(rec(0x1, 0b10));
    EXPECT_EQ(ub.size(), 1u);
    VirtDecisionRecord out;
    ASSERT_TRUE(ub.take(VirtAddr{0x1}, out));
    EXPECT_EQ(out.system_mask, 0b10);
}

TEST(UpdateBuffer, StaleFifoSlotsSkipped)
{
    VirtUpdateBuffer ub(2);
    ub.insert(rec(0x1));
    ub.insert(rec(0x2));
    VirtDecisionRecord out;
    ASSERT_TRUE(ub.take(VirtAddr{0x1}, out));  // leaves a stale FIFO slot
    ub.insert(rec(0x3));
    ub.insert(rec(0x4));  // must evict 0x2, not fail
    EXPECT_EQ(ub.size(), 2u);
    EXPECT_FALSE(ub.take(VirtAddr{0x2}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x3}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x4}, out));
}

TEST(UpdateBuffer, StorageBitsMatchPaper)
{
    // Table III: vUB 4x(36+12) bits, pUB 128x(36+12) bits.
    EXPECT_EQ(VirtUpdateBuffer(4).storage_bits(), 4u * 48u);
    EXPECT_EQ(VirtUpdateBuffer(128).storage_bits(), 128u * 48u);
}

TEST(UpdateBuffer, CapacityRespectedUnderChurn)
{
    VirtUpdateBuffer ub(8);
    for (Addr a = 0; a < 1000; ++a) {
        ub.insert(rec(a * kBlockSize));
        EXPECT_LE(ub.size(), 8u);
    }
}

// Regression: compacting a FIFO whose occupied span wraps past the
// ring end used to pack live slots toward ring position 0, clobbering
// the not-yet-read wrapped tail and smearing one record across the
// ring (count_ then drifted above the 2x-capacity bound and a later
// tail index landed out of bounds). This insert/take sequence is the
// minimal trace that leaves the ring full with head_ > 0 and stale
// slots mid-span, so the final insert must compact across the wrap.
TEST(UpdateBuffer, CompactionOfWrappedSpanKeepsLiveRecords)
{
    VirtUpdateBuffer ub(4);
    const auto at = [](Addr key) { return VirtAddr{key * kBlockSize}; };
    const auto ins = [&](Addr key) { ub.insert(rec(key * kBlockSize)); };
    const auto take = [&](Addr key) {
        VirtDecisionRecord out;
        return ub.take(at(key), out);
    };

    for (Addr k : {0, 1, 2, 3, 4}) {  // 4 evicts 0; head moves off 0
        ins(k);
    }
    EXPECT_TRUE(take(2));
    EXPECT_TRUE(take(3));
    ins(5);
    ins(6);
    ins(7);  // evicts 1
    EXPECT_TRUE(take(6));
    ins(0);  // purges the stale front; span now wraps the ring end
    EXPECT_TRUE(take(5));
    EXPECT_TRUE(take(7));
    ins(1);
    EXPECT_TRUE(take(0));
    ins(2);
    ins(3);  // ring full: 4 live + 4 stale slots, head_ > 0
    EXPECT_TRUE(take(2));
    ins(5);  // full ring, live_ < capacity: compacts across the wrap

    // The FIFO bookkeeping must still balance ...
    EXPECT_EQ(ub.size(), 4u);
    EXPECT_EQ(AuditAccess::ub_fifo_size(ub),
              ub.size() + AuditAccess::ub_stale(ub));
    EXPECT_LE(AuditAccess::ub_fifo_size(ub), 2 * ub.capacity());
    // ... and exactly the four live records survive, each once.
    for (Addr k : {4, 1, 3, 5}) {
        EXPECT_TRUE(take(k)) << "lost record " << k;
        EXPECT_FALSE(take(k)) << "duplicated record " << k;
    }
}

// Deterministic insert/take churn over a small key universe, checking
// the FIFO accounting invariants after every operation. A small key
// set maximises duplicate refreshes, stale-slot buildup and wrapped
// compactions — the paths the targeted tests above hit one at a time.
TEST(UpdateBuffer, ChurnPreservesAccountingInvariants)
{
    std::uint64_t lcg = 1;
    const auto next_rand = [&lcg] {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return lcg >> 33;
    };
    for (int trial = 0; trial < 50; ++trial) {
        VirtUpdateBuffer ub(4);
        for (int op = 0; op < 500; ++op) {
            const Addr key = next_rand() % 8;
            if (next_rand() % 10 < 7) {
                ub.insert(rec(key * kBlockSize));
            } else {
                VirtDecisionRecord out;
                ub.take(VirtAddr{key * kBlockSize}, out);
            }
            ASSERT_LE(ub.size(), ub.capacity());
            ASSERT_EQ(AuditAccess::ub_fifo_size(ub),
                      ub.size() + AuditAccess::ub_stale(ub));
            ASSERT_LE(AuditAccess::ub_fifo_size(ub), 2 * ub.capacity());
        }
    }
}

}  // namespace
}  // namespace moka
