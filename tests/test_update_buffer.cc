/** @file Unit tests for the vUB/pUB update buffers. */
#include <gtest/gtest.h>

#include "filter/update_buffer.h"

namespace moka {
namespace {

VirtDecisionRecord
rec(Addr block, std::uint8_t mask = 0)
{
    VirtDecisionRecord r;
    r.block = VirtAddr{block};
    r.num_features = 2;
    r.indexes[0] = static_cast<std::uint32_t>(block & 0x3FF);
    r.indexes[1] = 7;
    r.system_mask = mask;
    return r;
}

TEST(UpdateBuffer, InsertThenTake)
{
    VirtUpdateBuffer ub(4);
    ub.insert(rec(0x1000, 0b01));
    VirtDecisionRecord out;
    EXPECT_TRUE(ub.take(VirtAddr{0x1000}, out));
    EXPECT_EQ(out.block, VirtAddr{0x1000});
    EXPECT_EQ(out.system_mask, 0b01);
    EXPECT_EQ(out.num_features, 2);
    // Second take misses: records are consumed.
    EXPECT_FALSE(ub.take(VirtAddr{0x1000}, out));
}

TEST(UpdateBuffer, FifoEvictionWhenFull)
{
    VirtUpdateBuffer ub(2);
    ub.insert(rec(0x1));
    ub.insert(rec(0x2));
    ub.insert(rec(0x3));  // evicts 0x1
    VirtDecisionRecord out;
    EXPECT_FALSE(ub.take(VirtAddr{0x1}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x2}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x3}, out));
}

TEST(UpdateBuffer, DuplicateKeyRefreshes)
{
    VirtUpdateBuffer ub(2);
    ub.insert(rec(0x1, 0b01));
    ub.insert(rec(0x1, 0b10));
    EXPECT_EQ(ub.size(), 1u);
    VirtDecisionRecord out;
    ASSERT_TRUE(ub.take(VirtAddr{0x1}, out));
    EXPECT_EQ(out.system_mask, 0b10);
}

TEST(UpdateBuffer, StaleFifoSlotsSkipped)
{
    VirtUpdateBuffer ub(2);
    ub.insert(rec(0x1));
    ub.insert(rec(0x2));
    VirtDecisionRecord out;
    ASSERT_TRUE(ub.take(VirtAddr{0x1}, out));  // leaves a stale FIFO slot
    ub.insert(rec(0x3));
    ub.insert(rec(0x4));  // must evict 0x2, not fail
    EXPECT_EQ(ub.size(), 2u);
    EXPECT_FALSE(ub.take(VirtAddr{0x2}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x3}, out));
    EXPECT_TRUE(ub.take(VirtAddr{0x4}, out));
}

TEST(UpdateBuffer, StorageBitsMatchPaper)
{
    // Table III: vUB 4x(36+12) bits, pUB 128x(36+12) bits.
    EXPECT_EQ(VirtUpdateBuffer(4).storage_bits(), 4u * 48u);
    EXPECT_EQ(VirtUpdateBuffer(128).storage_bits(), 128u * 48u);
}

TEST(UpdateBuffer, CapacityRespectedUnderChurn)
{
    VirtUpdateBuffer ub(8);
    for (Addr a = 0; a < 1000; ++a) {
        ub.insert(rec(a * kBlockSize));
        EXPECT_LE(ub.size(), 8u);
    }
}

}  // namespace
}  // namespace moka
