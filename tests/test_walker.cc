/** @file Unit tests for the page walker and page-structure caches. */
#include <gtest/gtest.h>

#include "cache/cache.h"
#include "vmem/walker.h"

namespace moka {
namespace {

/** Memory level that counts accesses and returns fixed latency. */
class CountingMemory : public MemoryLevel
{
  public:
    AccessResult
    access(PhysAddr /*paddr*/, AccessType type, Cycle now, bool) override
    {
        ++count;
        if (type == AccessType::kPageWalk) {
            ++walk_count;
        }
        AccessResult r;
        r.done = now + 50;
        return r;
    }

    unsigned count = 0;
    unsigned walk_count = 0;
};

TEST(StructureCache, LruBasics)
{
    StructureCache psc(2);
    EXPECT_FALSE(psc.lookup(1));
    psc.fill(1);
    psc.fill(2);
    EXPECT_TRUE(psc.lookup(1));
    psc.fill(3);  // evicts 2 (1 was just touched)
    EXPECT_TRUE(psc.lookup(1));
    EXPECT_FALSE(psc.lookup(2));
    EXPECT_TRUE(psc.lookup(3));
    EXPECT_EQ(psc.lookups(), 5u);
    EXPECT_EQ(psc.hits(), 3u);
}

TEST(Walker, ColdWalkReadsFiveLevels)
{
    VmemConfig vcfg;
    PageTable pt(vcfg);
    CountingMemory mem;
    PageWalker walker(WalkerConfig{}, &pt, &mem);
    const PageWalker::WalkResult r = walker.walk(VirtAddr{0x40000000}, 0, false);
    EXPECT_EQ(r.mem_refs, 5u);
    EXPECT_FALSE(r.large);
    EXPECT_EQ(r.page_base, page_addr(pt.translate(VirtAddr{0x40000000}).paddr));
    // Dependent chain: 5 x 50-cycle reads plus PSC latency.
    EXPECT_GE(r.done, 250u);
    EXPECT_EQ(walker.demand_walks(), 1u);
}

TEST(Walker, PscShortensRepeatWalks)
{
    VmemConfig vcfg;
    PageTable pt(vcfg);
    CountingMemory mem;
    PageWalker walker(WalkerConfig{}, &pt, &mem);
    walker.walk(VirtAddr{0x40000000}, 0, false);
    // Neighbouring page shares all upper levels: PDE-PSC hit leaves
    // only the PTE read.
    const PageWalker::WalkResult r =
        walker.walk(VirtAddr{0x40000000 + kPageSize}, 10000, false);
    EXPECT_EQ(r.mem_refs, 1u);
}

TEST(Walker, LargePageWalkReadsFourLevelsCold)
{
    VmemConfig vcfg;
    vcfg.large_page_fraction = 1.0;
    PageTable pt(vcfg);
    CountingMemory mem;
    PageWalker walker(WalkerConfig{}, &pt, &mem);
    const PageWalker::WalkResult r = walker.walk(VirtAddr{0x40000000}, 0, false);
    EXPECT_EQ(r.mem_refs, 4u);
    EXPECT_TRUE(r.large);
}

TEST(Walker, LargePageRepeatWalkReadsOnlyLeafPde)
{
    VmemConfig vcfg;
    vcfg.large_page_fraction = 1.0;
    PageTable pt(vcfg);
    CountingMemory mem;
    PageWalker walker(WalkerConfig{}, &pt, &mem);
    walker.walk(VirtAddr{0x40000000}, 0, false);
    // Leaf PDEs are cached by the TLB, not the PSCs, so a repeat walk
    // in the same region still reads exactly the PDE (PDPTE-PSC hit).
    const PageWalker::WalkResult r =
        walker.walk(VirtAddr{0x40000000 + kPageSize}, 10000, false);
    EXPECT_EQ(r.mem_refs, 1u);
}

TEST(Walker, SpeculativeCounterSplit)
{
    VmemConfig vcfg;
    PageTable pt(vcfg);
    CountingMemory mem;
    PageWalker walker(WalkerConfig{}, &pt, &mem);
    walker.walk(VirtAddr{0x1000000}, 0, false);
    walker.walk(VirtAddr{0x2000000}, 0, true);
    walker.walk(VirtAddr{0x3000000}, 0, true);
    EXPECT_EQ(walker.demand_walks(), 1u);
    EXPECT_EQ(walker.spec_walks(), 2u);
    EXPECT_EQ(walker.total_mem_refs(), mem.walk_count);
}

TEST(Walker, ConcurrencySlotsSerializeExcessWalks)
{
    VmemConfig vcfg;
    PageTable pt(vcfg);
    CountingMemory mem;
    WalkerConfig wcfg;
    wcfg.concurrent_walks = 1;
    PageWalker walker(wcfg, &pt, &mem);
    const auto a = walker.walk(VirtAddr{0x10000000}, 0, false);
    // With one slot, a second walk requested at cycle 0 cannot start
    // before the first finishes.
    const auto b = walker.walk(VirtAddr{0x20000000}, 0, false);
    EXPECT_GE(b.done, a.done);
}

TEST(Walker, MaxFiveUselessAccessesRisk)
{
    // The paper's headline: a useless page-cross prefetch costs up to
    // 4 walk references + 1 prefetch fill. Verify the walk side never
    // exceeds 4 when any PSC level hits, and 5 cold.
    VmemConfig vcfg;
    PageTable pt(vcfg);
    CountingMemory mem;
    PageWalker walker(WalkerConfig{}, &pt, &mem);
    const auto cold = walker.walk(VirtAddr{0x50000000}, 0, true);
    EXPECT_LE(cold.mem_refs, 5u);
    const auto warm = walker.walk(VirtAddr{0x50000000 + kLargePageSize}, 0, true);
    EXPECT_LE(warm.mem_refs, 4u);  // PML5/PML4/PDPT cached
}

}  // namespace
}  // namespace moka
