# Makes tools/ importable so `python3 -m tools.simlint` works from the
# repository root (the only supported invocation directory).
