#!/usr/bin/env bash
# CI chaos drill for the sharded execution layer (sim/jobs/shard.h):
#
#   1. run a fig09-class sweep single-process -> reference CSV;
#   2. run the identical matrix as 4 shard processes sharing one
#      --shard-dir; two of them carry seeded self-SIGKILL fault plans
#      (--inject-kill) and die at claim/run/commit boundaries;
#   3. the survivors must reclaim the victims' expired leases and
#      finish every job in the matrix;
#   4. --merge must reassemble a CSV byte-identical to the reference.
#
# Usage: ci_chaos_shard.sh <path-to-sweep_tool> [workdir]
set -u

SWEEP=${1:?usage: ci_chaos_shard.sh <sweep_tool> [workdir]}
WORK=${2:-$(mktemp -d)}
FARM="$WORK/farm"
mkdir -p "$FARM"

# Fig. 9-class matrix: workloads x {discard, permit, dripper}. Large
# enough that the victims reliably claim work before dying, small
# enough to stay fast.
ARGS=(--workloads 8 --insts 100000 --warmup 20000
      --schemes discard,permit,dripper)
# Short TTL so steals happen promptly; --jobs 2 per shard exercises
# concurrent claim/heartbeat threads inside each process.
SHARD=(--jobs 2 --shard-dir "$FARM" --lease-ttl 2000)

echo "== reference run (single process) =="
"$SWEEP" "${ARGS[@]}" > "$WORK/ref.csv" 2> "$WORK/ref.err"
status=$?
if [ "$status" -ne 0 ]; then
    echo "reference sweep exited with $status" >&2
    cat "$WORK/ref.err" >&2
    exit 1
fi

echo "== 4 shards, 2 seeded victims =="
# Victims start first so they own leases when the kill fires; a high
# rate makes the seeded SIGKILL land within their first few boundary
# crossings.
"$SWEEP" "${ARGS[@]}" "${SHARD[@]}" --shard-name victim0 \
    --inject-kill 0.9 --fault-seed 11 \
    > "$WORK/victim0.csv" 2> "$WORK/victim0.err" &
v0=$!
"$SWEEP" "${ARGS[@]}" "${SHARD[@]}" --shard-name victim1 \
    --inject-kill 0.9 --fault-seed 22 \
    > "$WORK/victim1.csv" 2> "$WORK/victim1.err" &
v1=$!
sleep 1
"$SWEEP" "${ARGS[@]}" "${SHARD[@]}" --shard-name survivor0 \
    > "$WORK/survivor0.csv" 2> "$WORK/survivor0.err" &
s0=$!
"$SWEEP" "${ARGS[@]}" "${SHARD[@]}" --shard-name survivor1 \
    > "$WORK/survivor1.csv" 2> "$WORK/survivor1.err" &
s1=$!

wait "$v0"; rv0=$?
wait "$v1"; rv1=$?
wait "$s0"; rs0=$?
wait "$s1"; rs1=$?
echo "exit codes: victim0=$rv0 victim1=$rv1" \
     "survivor0=$rs0 survivor1=$rs1"
cat "$WORK/survivor0.err" "$WORK/survivor1.err"

fail=0
for rc in "$rv0" "$rv1"; do
    if [ "$rc" -ne 137 ]; then
        echo "FAIL: a victim was expected to die of SIGKILL (137)," \
             "got $rc" >&2
        fail=1
    fi
done
for rc in "$rs0" "$rs1"; do
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: a survivor exited with $rc; the work-stealing" \
             "recovery did not finish the matrix" >&2
        fail=1
    fi
done
[ "$fail" -ne 0 ] && exit 1

echo "== merge =="
"$SWEEP" "${ARGS[@]}" --shard-dir "$FARM" --merge \
    > "$WORK/merged.csv" 2> "$WORK/merge.err"
status=$?
cat "$WORK/merge.err"
if [ "$status" -ne 0 ]; then
    echo "FAIL: merge exited with $status" >&2
    exit 1
fi

echo "== verify =="
if ! diff -q "$WORK/ref.csv" "$WORK/merged.csv"; then
    echo "FAIL: merged CSV differs from the single-process reference" >&2
    diff "$WORK/ref.csv" "$WORK/merged.csv" | head -20 >&2
    exit 1
fi
echo "PASS: two shards died mid-sweep, survivors finished all jobs," \
     "merged CSV is byte-identical to the single-process run"
