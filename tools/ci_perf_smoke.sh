#!/usr/bin/env bash
# CI perf smoke for the telemetry subsystem's overhead contract:
#
#   run one short fixed workload through mokasim_cli with telemetry
#   disarmed (built in, runtime gate off) and with telemetry fully
#   armed (epoch sampling + trace events), best-of-N wall clock each,
#   and write BENCH_smoke.json with simulated kilo-instructions per
#   second both ways.  Fails when the armed run is more than
#   MAX_OVERHEAD_PCT slower than the disarmed run -- the sampler is
#   sized to ride the adaptive-epoch cadence, so anything above a few
#   percent means a hot-path regression (a sample point that stopped
#   honouring the gate, or work that migrated into the per-step path).
#
# Usage: ci_perf_smoke.sh <path-to-mokasim_cli> [workdir] [out.json]
set -u

CLI=${1:?usage: ci_perf_smoke.sh <mokasim_cli> [workdir] [out.json]}
WORK=${2:-$(mktemp -d)}
OUT=${3:-BENCH_smoke.json}
mkdir -p "$WORK"

WORKLOAD=parsec.stream.0
SCHEME=dripper
# Long enough that the end-of-run telemetry flush (a fixed file-IO
# cost) cannot dominate the per-instruction overhead being measured.
WARMUP=200000
INSTS=4000000
REPS=3

# Gate thresholds come from the committed BENCH_*.json baselines at
# the repo root -- one source of truth shared by CI and local runs.
# An environment variable still overrides for experiments, and the
# built-in default covers a baseline that has not been committed yet.
# Read before any benchmark runs: OUT may be the committed file.
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
json_field() { # args: file, key, default
    local v
    v=$(grep -o "\"$2\": *-\{0,1\}[0-9.]*" "$1" 2>/dev/null |
        head -1 | sed 's/.*: *//')
    echo "${v:-$3}"
}
MAX_OVERHEAD_PCT=${MAX_OVERHEAD_PCT:-$(json_field \
    "$REPO_ROOT/BENCH_smoke.json" limit_pct 5)}

# Wall-clock one run in nanoseconds; echoes the elapsed time.
run_once() { # args: extra cli flags...
    local begin end
    begin=$(date +%s%N)
    "$CLI" --workload "$WORKLOAD" --scheme "$SCHEME" \
        --warmup "$WARMUP" --insts "$INSTS" "$@" \
        > /dev/null 2>> "$WORK/smoke.err" || return 1
    end=$(date +%s%N)
    echo $((end - begin))
}

best_of() { # args: label, extra cli flags...
    local label=$1
    shift
    local best=0 t r
    for r in $(seq "$REPS"); do
        t=$(run_once "$@") || {
            echo "perf-smoke: $label run $r failed:" >&2
            cat "$WORK/smoke.err" >&2
            return 1
        }
        if [ "$best" -eq 0 ] || [ "$t" -lt "$best" ]; then
            best=$t
        fi
    done
    echo "$best"
}

echo "== perf smoke: $WORKLOAD/$SCHEME, $INSTS insts, best of $REPS =="

# Telemetry disarmed: the subsystem is compiled in but the runtime
# gate stays off (no env var, no flags).
unset MOKASIM_TELEMETRY
off_ns=$(best_of "telemetry-off") || exit 1

# Telemetry armed: runtime gate on, epoch timeseries + trace events.
on_ns=$(MOKASIM_TELEMETRY=1 best_of "telemetry-on" \
    --telemetry-dir "$WORK/tele" \
    --trace-events "$WORK/tele/smoke.trace.json") || exit 1

# The armed run must actually have produced telemetry, or the
# comparison is vacuous.
if [ ! -s "$WORK/tele/smoke.trace.json" ]; then
    echo "perf-smoke: armed run produced no trace events" >&2
    exit 1
fi

awk -v insts="$INSTS" -v off_ns="$off_ns" -v on_ns="$on_ns" \
    -v max_pct="$MAX_OVERHEAD_PCT" -v out="$OUT" \
    -v workload="$WORKLOAD" -v scheme="$SCHEME" 'BEGIN {
    off_kips = (insts / 1000.0) / (off_ns / 1e9);
    on_kips = (insts / 1000.0) / (on_ns / 1e9);
    overhead_pct = (off_ns > 0) ? (on_ns - off_ns) * 100.0 / off_ns : 0;
    printf "telemetry off: %.1f kinsts/s (%.1f ms)\n", \
        off_kips, off_ns / 1e6;
    printf "telemetry on:  %.1f kinsts/s (%.1f ms)\n", \
        on_kips, on_ns / 1e6;
    printf "overhead: %.2f%% (limit %d%%)\n", overhead_pct, max_pct;
    printf "{\n" > out;
    printf "  \"workload\": \"%s\",\n", workload > out;
    printf "  \"scheme\": \"%s\",\n", scheme > out;
    printf "  \"instructions\": %d,\n", insts > out;
    printf "  \"kinsts_per_sec\": {\"telemetry_off\": %.2f, " \
        "\"telemetry_on\": %.2f},\n", off_kips, on_kips > out;
    printf "  \"overhead_pct\": %.2f,\n", overhead_pct > out;
    printf "  \"limit_pct\": %d\n", max_pct > out;
    printf "}\n" > out;
    exit overhead_pct > max_pct ? 1 : 0;
}'
status=$?
echo "wrote $OUT"
if [ "$status" -ne 0 ]; then
    echo "perf-smoke: telemetry overhead exceeds ${MAX_OVERHEAD_PCT}%" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Hot-path throughput benchmark (BENCH_hotpath.json)
#
# Simulated instructions per wall-clock second for the paper's filter
# scheme (dripper) and the permit-everything baseline, best-of-N.
# Absolute inst/sec is machine-specific, so the committed baseline at
# the repo root is informational; the CI gate is the machine-portable
# RATIO: dripper exercises the full filter stack on top of permit's
# pipeline, so dripper/permit throughput collapsing below MIN_RATIO_PCT
# means per-access work crept into the filter hot path.
# ---------------------------------------------------------------------------
HOTPATH_OUT=${HOTPATH_OUT:-BENCH_hotpath.json}
MIN_RATIO_PCT=${MIN_RATIO_PCT:-$(json_field \
    "$REPO_ROOT/BENCH_hotpath.json" min_ratio_pct 60)}

echo "== hot-path bench: $WORKLOAD, $INSTS insts, best of $REPS =="
dripper_ns=$(SCHEME=dripper best_of "hotpath-dripper") || exit 1
permit_ns=$(SCHEME=permit best_of "hotpath-permit") || exit 1

awk -v insts="$INSTS" -v dripper_ns="$dripper_ns" \
    -v permit_ns="$permit_ns" -v min_ratio="$MIN_RATIO_PCT" \
    -v out="$HOTPATH_OUT" -v workload="$WORKLOAD" 'BEGIN {
    dripper_ips = insts / (dripper_ns / 1e9);
    permit_ips = insts / (permit_ns / 1e9);
    ratio_pct = (permit_ips > 0) ? dripper_ips * 100.0 / permit_ips : 0;
    printf "permit:  %.0f inst/s (%.1f ms)\n", permit_ips, permit_ns / 1e6;
    printf "dripper: %.0f inst/s (%.1f ms)\n", dripper_ips, dripper_ns / 1e6;
    printf "dripper/permit: %.1f%% (gate: >= %d%%)\n", ratio_pct, min_ratio;
    printf "{\n" > out;
    printf "  \"workload\": \"%s\",\n", workload > out;
    printf "  \"instructions\": %d,\n", insts > out;
    printf "  \"inst_per_sec\": {\"permit\": %.0f, \"dripper\": %.0f},\n", \
        permit_ips, dripper_ips > out;
    printf "  \"dripper_permit_ratio_pct\": %.1f,\n", ratio_pct > out;
    printf "  \"min_ratio_pct\": %d\n", min_ratio > out;
    printf "}\n" > out;
    exit ratio_pct < min_ratio ? 1 : 0;
}'
status=$?
echo "wrote $HOTPATH_OUT"
if [ "$status" -ne 0 ]; then
    echo "perf-smoke: dripper hot path fell below ${MIN_RATIO_PCT}% of" \
         "permit throughput" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Warmup-snapshot reuse benchmark (BENCH_snapshot.json)
#
# Wall-clock a warmup-heavy single-trace sweep (1 workload x 4 schemes)
# cold, then again against a pre-populated --snapshot-dir where every
# warmup is restored instead of re-simulated.  The committed numbers
# are informational; the CI gate is the machine-portable cold/warm
# RATIO: with the warmup budget dominating each point, reuse must pay
# at least MIN_SNAPSHOT_SPEEDUP_X, or restore has become as expensive
# as the warmup it replaces (serialization creep, a cache that stopped
# hitting, or a fallback to cold warmups).
# ---------------------------------------------------------------------------
SNAPSHOT_OUT=${SNAPSHOT_OUT:-BENCH_snapshot.json}
MIN_SNAPSHOT_SPEEDUP_X=${MIN_SNAPSHOT_SPEEDUP_X:-$(json_field \
    "$REPO_ROOT/BENCH_snapshot.json" min_speedup_x 1.5)}
SWEEP=${SWEEP:-$(dirname "$CLI")/sweep_tool}

if [ ! -x "$SWEEP" ]; then
    echo "perf-smoke: sweep_tool not found at $SWEEP" >&2
    exit 1
fi

SNAP_SCHEMES=discard,permit,ppf,dripper
SNAP_WARMUP=800000
SNAP_INSTS=200000

run_sweep_once() { # args: extra sweep flags...
    local begin end
    begin=$(date +%s%N)
    "$SWEEP" --workloads 1 --schemes "$SNAP_SCHEMES" \
        --warmup "$SNAP_WARMUP" --insts "$SNAP_INSTS" "$@" \
        > /dev/null 2>> "$WORK/snap.err" || return 1
    end=$(date +%s%N)
    echo $((end - begin))
}

best_of_sweep() { # args: label, extra sweep flags...
    local label=$1
    shift
    local best=0 t r
    for r in $(seq "$REPS"); do
        t=$(run_sweep_once "$@") || {
            echo "perf-smoke: $label sweep run $r failed:" >&2
            cat "$WORK/snap.err" >&2
            return 1
        }
        if [ "$best" -eq 0 ] || [ "$t" -lt "$best" ]; then
            best=$t
        fi
    done
    echo "$best"
}

echo "== snapshot bench: 1 workload x {$SNAP_SCHEMES}," \
     "$SNAP_WARMUP warmup + $SNAP_INSTS measured, best of $REPS =="

cold_ns=$(best_of_sweep "snapshot-cold") || exit 1

# Prime the cache once (untimed), then every timed warm run restores.
SNAPDIR="$WORK/snaps"
run_sweep_once --snapshot-dir "$SNAPDIR" > /dev/null || {
    echo "perf-smoke: snapshot priming sweep failed:" >&2
    cat "$WORK/snap.err" >&2
    exit 1
}
warm_ns=$(best_of_sweep "snapshot-warm" --snapshot-dir "$SNAPDIR") || exit 1

# A warm run that misses the cache benchmarks the wrong thing.
: > "$WORK/snap.err"
run_sweep_once --snapshot-dir "$SNAPDIR" > /dev/null || exit 1
if ! grep -q 'snapshot cache: [1-9][0-9]* hits, 0 misses' "$WORK/snap.err"
then
    echo "perf-smoke: warm sweep was not fully served by the cache:" >&2
    grep '^snapshot cache:' "$WORK/snap.err" >&2
    exit 1
fi

awk -v cold_ns="$cold_ns" -v warm_ns="$warm_ns" \
    -v min_x="$MIN_SNAPSHOT_SPEEDUP_X" -v out="$SNAPSHOT_OUT" \
    -v schemes="$SNAP_SCHEMES" -v warmup="$SNAP_WARMUP" \
    -v insts="$SNAP_INSTS" 'BEGIN {
    speedup = (warm_ns > 0) ? cold_ns / warm_ns : 0;
    printf "cold: %.1f ms, warm: %.1f ms, speedup: %.2fx (gate >= %.1fx)\n", \
        cold_ns / 1e6, warm_ns / 1e6, speedup, min_x;
    printf "{\n" > out;
    printf "  \"schemes\": \"%s\",\n", schemes > out;
    printf "  \"warmup_insts\": %d,\n", warmup > out;
    printf "  \"measure_insts\": %d,\n", insts > out;
    printf "  \"wall_ms\": {\"cold\": %.1f, \"warm\": %.1f},\n", \
        cold_ns / 1e6, warm_ns / 1e6 > out;
    printf "  \"speedup_x\": %.2f,\n", speedup > out;
    printf "  \"min_speedup_x\": %.1f\n", min_x > out;
    printf "}\n" > out;
    exit speedup < min_x ? 1 : 0;
}'
status=$?
echo "wrote $SNAPSHOT_OUT"
if [ "$status" -ne 0 ]; then
    echo "perf-smoke: warmup-snapshot reuse pays less than" \
         "${MIN_SNAPSHOT_SPEEDUP_X}x on a warmup-heavy sweep" >&2
    exit 1
fi
