#!/usr/bin/env bash
# CI perf smoke for the telemetry subsystem's overhead contract:
#
#   run one short fixed workload through mokasim_cli with telemetry
#   disarmed (built in, runtime gate off) and with telemetry fully
#   armed (epoch sampling + trace events), best-of-N wall clock each,
#   and write BENCH_smoke.json with simulated kilo-instructions per
#   second both ways.  Fails when the armed run is more than
#   MAX_OVERHEAD_PCT slower than the disarmed run -- the sampler is
#   sized to ride the adaptive-epoch cadence, so anything above a few
#   percent means a hot-path regression (a sample point that stopped
#   honouring the gate, or work that migrated into the per-step path).
#
# Usage: ci_perf_smoke.sh <path-to-mokasim_cli> [workdir] [out.json]
set -u

CLI=${1:?usage: ci_perf_smoke.sh <mokasim_cli> [workdir] [out.json]}
WORK=${2:-$(mktemp -d)}
OUT=${3:-BENCH_smoke.json}
mkdir -p "$WORK"

WORKLOAD=parsec.stream.0
SCHEME=dripper
# Long enough that the end-of-run telemetry flush (a fixed file-IO
# cost) cannot dominate the per-instruction overhead being measured.
WARMUP=200000
INSTS=4000000
REPS=3
MAX_OVERHEAD_PCT=5

# Wall-clock one run in nanoseconds; echoes the elapsed time.
run_once() { # args: extra cli flags...
    local begin end
    begin=$(date +%s%N)
    "$CLI" --workload "$WORKLOAD" --scheme "$SCHEME" \
        --warmup "$WARMUP" --insts "$INSTS" "$@" \
        > /dev/null 2>> "$WORK/smoke.err" || return 1
    end=$(date +%s%N)
    echo $((end - begin))
}

best_of() { # args: label, extra cli flags...
    local label=$1
    shift
    local best=0 t r
    for r in $(seq "$REPS"); do
        t=$(run_once "$@") || {
            echo "perf-smoke: $label run $r failed:" >&2
            cat "$WORK/smoke.err" >&2
            return 1
        }
        if [ "$best" -eq 0 ] || [ "$t" -lt "$best" ]; then
            best=$t
        fi
    done
    echo "$best"
}

echo "== perf smoke: $WORKLOAD/$SCHEME, $INSTS insts, best of $REPS =="

# Telemetry disarmed: the subsystem is compiled in but the runtime
# gate stays off (no env var, no flags).
unset MOKASIM_TELEMETRY
off_ns=$(best_of "telemetry-off") || exit 1

# Telemetry armed: runtime gate on, epoch timeseries + trace events.
on_ns=$(MOKASIM_TELEMETRY=1 best_of "telemetry-on" \
    --telemetry-dir "$WORK/tele" \
    --trace-events "$WORK/tele/smoke.trace.json") || exit 1

# The armed run must actually have produced telemetry, or the
# comparison is vacuous.
if [ ! -s "$WORK/tele/smoke.trace.json" ]; then
    echo "perf-smoke: armed run produced no trace events" >&2
    exit 1
fi

awk -v insts="$INSTS" -v off_ns="$off_ns" -v on_ns="$on_ns" \
    -v max_pct="$MAX_OVERHEAD_PCT" -v out="$OUT" \
    -v workload="$WORKLOAD" -v scheme="$SCHEME" 'BEGIN {
    off_kips = (insts / 1000.0) / (off_ns / 1e9);
    on_kips = (insts / 1000.0) / (on_ns / 1e9);
    overhead_pct = (off_ns > 0) ? (on_ns - off_ns) * 100.0 / off_ns : 0;
    printf "telemetry off: %.1f kinsts/s (%.1f ms)\n", \
        off_kips, off_ns / 1e6;
    printf "telemetry on:  %.1f kinsts/s (%.1f ms)\n", \
        on_kips, on_ns / 1e6;
    printf "overhead: %.2f%% (limit %d%%)\n", overhead_pct, max_pct;
    printf "{\n" > out;
    printf "  \"workload\": \"%s\",\n", workload > out;
    printf "  \"scheme\": \"%s\",\n", scheme > out;
    printf "  \"instructions\": %d,\n", insts > out;
    printf "  \"kinsts_per_sec\": {\"telemetry_off\": %.2f, " \
        "\"telemetry_on\": %.2f},\n", off_kips, on_kips > out;
    printf "  \"overhead_pct\": %.2f,\n", overhead_pct > out;
    printf "  \"limit_pct\": %d\n", max_pct > out;
    printf "}\n" > out;
    exit overhead_pct > max_pct ? 1 : 0;
}'
status=$?
echo "wrote $OUT"
if [ "$status" -ne 0 ]; then
    echo "perf-smoke: telemetry overhead exceeds ${MAX_OVERHEAD_PCT}%" >&2
    exit 1
fi
