#!/usr/bin/env bash
# CI throughput-trajectory gate:
#
#   run bench/throughput (built from the `fast` preset) and compare
#   its geomean inst/sec against the committed BENCH_throughput.json
#   baseline at the repo root.  The binary itself enforces the gate:
#   it exits non-zero when the fresh geomean falls more than the
#   baseline's max_regression_pct below the baseline geomean.
#
#   Absolute inst/sec is machine-specific; the committed baseline is
#   the reference-machine trajectory, and CI compares runner against
#   runner.  Bumping the baseline (after an intentional change) is a
#   one-file edit: regenerate with `throughput --out
#   BENCH_throughput.json` on the reference machine and commit.
#
# Usage: ci_perf_throughput.sh <path-to-throughput-binary> [out.json]
set -u

BENCH=${1:?usage: ci_perf_throughput.sh <throughput-binary> [out.json]}
OUT=${2:-BENCH_throughput.ci.json}
REPS=${REPS:-3}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BASELINE=$REPO_ROOT/BENCH_throughput.json

if [ ! -f "$BASELINE" ]; then
    echo "perf-throughput: no committed baseline at $BASELINE" >&2
    exit 1
fi

"$BENCH" --reps "$REPS" --out "$OUT" --baseline "$BASELINE"
