#!/usr/bin/env bash
# CI byte-identity drill for warmup-snapshot reuse:
#
#   1. run a small sweep cold (no snapshot cache) -> reference CSV;
#   2. run the identical sweep with --snapshot-dir on an empty
#      directory: every warmup misses, is produced once per key and
#      published (the cache must report >= 1 save);
#   3. run it a third time against the now-populated directory: every
#      warmup must be served from the cache (>= 1 hit, 0 misses);
#   4. both snapshot runs' CSVs must be byte-identical to the cold
#      reference -- restoring a warmed machine may not perturb the
#      measured region by even one bit.
#
# Usage: ci_snapshot_reuse.sh <path-to-sweep_tool> [workdir]
set -u

SWEEP=${1:?usage: ci_snapshot_reuse.sh <sweep_tool> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

# 6 workloads x 3 schemes: 18 jobs over 6 warmup keys per scheme
# config, so the second snapshot run exercises both intra-run
# memoization and cross-run disk hits.
ARGS=(--workloads 6 --insts 100000 --warmup 100000
      --schemes discard,permit,dripper --jobs 4)

# Cache-report line printed to stderr by sweep_tool, e.g.
#   snapshot cache: 12 hits, 6 misses, 6 saves, 0 invalid
cache_stat() { # args: err-file, field name
    sed -n 's/^snapshot cache: .*/&/p' "$1" |
        grep -o "[0-9]* $2" | grep -o '[0-9]*'
}

echo "== cold reference sweep (no snapshot cache) =="
"$SWEEP" "${ARGS[@]}" > "$WORK/ref.csv" 2> "$WORK/ref.err" || {
    echo "cold sweep failed:" >&2
    cat "$WORK/ref.err" >&2
    exit 1
}

echo "== first snapshot sweep (empty cache: produce + publish) =="
"$SWEEP" "${ARGS[@]}" --snapshot-dir "$WORK/snaps" \
    > "$WORK/first.csv" 2> "$WORK/first.err" || {
    echo "first snapshot sweep failed:" >&2
    cat "$WORK/first.err" >&2
    exit 1
}
grep '^snapshot cache:' "$WORK/first.err"
saves=$(cache_stat "$WORK/first.err" saves)
if [ -z "$saves" ] || [ "$saves" -lt 1 ]; then
    echo "FAIL: first snapshot run published no snapshots" >&2
    exit 1
fi

echo "== second snapshot sweep (warm cache: restore only) =="
"$SWEEP" "${ARGS[@]}" --snapshot-dir "$WORK/snaps" \
    > "$WORK/second.csv" 2> "$WORK/second.err" || {
    echo "second snapshot sweep failed:" >&2
    cat "$WORK/second.err" >&2
    exit 1
}
grep '^snapshot cache:' "$WORK/second.err"
hits=$(cache_stat "$WORK/second.err" hits)
misses=$(cache_stat "$WORK/second.err" misses)
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
    echo "FAIL: second snapshot run hit the cache zero times" >&2
    exit 1
fi
if [ -n "$misses" ] && [ "$misses" -ne 0 ]; then
    echo "FAIL: second snapshot run missed a warm cache ($misses)" >&2
    exit 1
fi

echo "== verify (byte-for-byte CSV identity) =="
for run in first second; do
    if ! diff -q "$WORK/ref.csv" "$WORK/$run.csv"; then
        echo "FAIL: $run snapshot CSV differs from the cold reference" >&2
        diff "$WORK/ref.csv" "$WORK/$run.csv" | head -20 >&2
        exit 1
    fi
done
echo "PASS: snapshot-reuse sweeps reproduced the cold CSV byte-for-byte" \
     "($saves snapshot(s) published, $hits warm hit(s))"
