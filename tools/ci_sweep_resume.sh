#!/usr/bin/env bash
# CI crash-recovery drill for the job engine:
#
#   1. run a fault-injected sweep to completion -> reference CSV;
#   2. run the identical sweep again, SIGKILL it mid-run;
#   3. resume from the surviving journal;
#   4. the resumed CSV must be byte-identical to the reference.
#
# Usage: ci_sweep_resume.sh <path-to-sweep_tool> [workdir]
set -u

SWEEP=${1:?usage: ci_sweep_resume.sh <sweep_tool> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"

# Big enough that the mid-run KILL reliably lands before the sweep
# finishes, small enough to stay fast: 16 workloads x 3 schemes.
ARGS=(--workloads 16 --insts 200000 --warmup 50000
      --schemes discard,permit,dripper
      --inject-faults 0.15 --fault-seed 7)

echo "== reference run (uninterrupted) =="
"$SWEEP" "${ARGS[@]}" --journal "$WORK/ref.jsonl" \
    > "$WORK/ref.csv" 2> "$WORK/ref.err"
status=$?
# Injected faults make a partial-results exit (1) expected; anything
# else is a usage or crash bug.
if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
    echo "reference sweep exited with $status" >&2
    exit 1
fi
cat "$WORK/ref.err"

echo "== interrupted run (SIGKILL mid-sweep) =="
"$SWEEP" "${ARGS[@]}" --journal "$WORK/crash.jsonl" \
    > "$WORK/crash.csv" 2> "$WORK/crash.err" &
pid=$!
# Let it journal a few jobs, then kill it hard.
sleep 2
kill -KILL "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
done_jobs=$(wc -l < "$WORK/crash.jsonl" 2>/dev/null || echo 0)
total_jobs=$(wc -l < "$WORK/ref.jsonl")
echo "journal survived the kill with $done_jobs/$total_jobs job(s)"

echo "== resumed run =="
"$SWEEP" "${ARGS[@]}" --resume "$WORK/crash.jsonl" \
    --journal "$WORK/resumed.jsonl" \
    > "$WORK/resumed.csv" 2> "$WORK/resumed.err"
status=$?
if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
    echo "resumed sweep exited with $status" >&2
    exit 1
fi
cat "$WORK/resumed.err"

echo "== verify =="
if ! diff -q "$WORK/ref.csv" "$WORK/resumed.csv"; then
    echo "FAIL: resumed CSV differs from the uninterrupted reference" >&2
    diff "$WORK/ref.csv" "$WORK/resumed.csv" | head -20 >&2
    exit 1
fi
if [ "$(wc -l < "$WORK/resumed.jsonl")" -ne "$total_jobs" ]; then
    echo "FAIL: resumed journal is not a complete resume point" >&2
    exit 1
fi
echo "PASS: resume reproduced the reference CSV byte-for-byte" \
     "($done_jobs job(s) recovered from the journal)"
