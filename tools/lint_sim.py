#!/usr/bin/env python3
"""Repo-specific lint rules for mokasim.

Generic tooling (clang-tidy, -Wall -Wextra) cannot express the
project's own correctness conventions, so this script enforces them:

  L1  no raw `assert` / <cassert> in src/ -- simulator code must use
      SIM_REQUIRE (always-on) or SIM_AUDIT (audit builds) from
      common/check.h so precondition failures are never compiled out
      by NDEBUG in release builds.
  L2  no truncating casts of address-typed expressions to 32-bit (or
      narrower) integer types.  Virtual and physical addresses are 64
      bits wide; a 32-bit cast silently aliases addresses 4 GiB apart.
      Casts of expressions already masked/shifted into a narrow range
      are allowed.
  L3  no casts of address-typed expressions to narrow *signed* types.
      Address arithmetic is unsigned; a signed narrow cast invites
      implementation-defined wrap and sign-extension bugs when mixed
      back into 64-bit arithmetic.
  L4  every stateful simulator component (a class/struct in
      src/{cache,dram,vmem,filter} headers that has data members) must
      be registered with the invariant auditor: its name must appear
      in src/audit/audit.cc.  Pure interfaces (only pure-virtual
      methods) are exempt, as are names listed on a
      `LINT_AUDIT_EXEMPT: Name` line in audit.cc.
  L5  no bare `catch (...)` in src/.  Swallowing an unknown exception
      erases the failure class the job engine's taxonomy
      (sim/jobs/job.h) exists to preserve.  A bare catch is allowed
      only when annotated with a `LINT_CATCH_OK: <why>` comment on the
      same line, which asserts the handler classifies or rethrows.
  L6  no raw progress output in src/: `std::cout` / `printf` /
      `fprintf(stdout, ...)` corrupt machine-readable tool output
      (sweep CSV goes to stdout), and ad-hoc stderr chatter bypasses
      the telemetry subsystem (src/telemetry/) that exists for
      progress reporting.  Deliberate surfaces -- the report-table
      printer, usage errors, crash/audit diagnostics -- are annotated
      with `LINT_LOG_OK: <why>` on the same line.

Exit status is non-zero when any finding is produced.  Run from the
repo root:  python3 tools/lint_sim.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
AUDIT_CC = SRC / "audit" / "audit.cc"

# Directories whose headers define stateful simulator components that
# the auditor is expected to cover (rule L4).
AUDITED_DIRS = ("cache", "dram", "vmem", "filter")

# Identifier fragments that mark an expression as address-typed for
# rules L2/L3.
ADDR_WORD = r"(?:vaddr|paddr|addr|vpn|ppn|pc)"

findings: list[tuple[str, Path, int, str]] = []


def finding(rule: str, path: Path, line_no: int, message: str) -> None:
    findings.append((rule, path, line_no, message))


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                break
            i = j  # keep the newline
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:end]))
            i = end
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            # Preserve newlines so line numbers stay honest even when a
            # digit separator (800'000) mis-pairs across lines.
            if j - i >= 2:
                inner = "".join(
                    c if c == "\n" else " " for c in text[i + 1:j - 1])
                out.append(quote + inner + quote)
            else:
                out.append(text[i:j])
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def src_files(suffixes: tuple[str, ...]) -> list[Path]:
    return sorted(p for p in SRC.rglob("*") if p.suffix in suffixes)


# --------------------------------------------------------------------------
# L1: raw assert in src/
# --------------------------------------------------------------------------

def check_l1() -> None:
    assert_call = re.compile(r"(?<![\w.])assert\s*\(")
    cassert_inc = re.compile(r'#\s*include\s*<cassert>|#\s*include\s*"assert\.h"')
    for path in src_files((".h", ".cc")):
        if path == SRC / "common" / "check.h":
            continue  # the one place allowed to talk about assert
        text = strip_comments(path.read_text())
        for no, line in enumerate(text.splitlines(), 1):
            if cassert_inc.search(line):
                finding("L1", path, no,
                        "<cassert> include in simulator code; use "
                        '"common/check.h" (SIM_REQUIRE / SIM_AUDIT) instead')
            elif assert_call.search(line) and "static_assert" not in line:
                finding("L1", path, no,
                        "raw assert() is compiled out by NDEBUG; use "
                        "SIM_REQUIRE (always-on) or SIM_AUDIT (audit builds)")


# --------------------------------------------------------------------------
# L2/L3: narrowing casts of address-typed expressions
# --------------------------------------------------------------------------

NARROW_UNSIGNED = (
    r"(?:std::)?uint(?:8|16|32)_t|unsigned\s+(?:char|short|int)\b|unsigned\b(?!\s+long)"
)
NARROW_SIGNED = (
    r"(?:std::)?int(?:8|16|32)_t(?!\d)|short\b|(?<!unsigned\s)(?<!long\s)\bint\b"
)


def cast_sites(line: str, type_pattern: str):
    """Yield (column, inner_expression) for static_cast<T>(expr) and
    C-style (T)(expr) casts whose T matches type_pattern."""
    for m in re.finditer(r"static_cast\s*<\s*(" + type_pattern + r")\s*>\s*\(", line):
        yield m.start(), _balanced(line, m.end() - 1)
    for m in re.finditer(r"\(\s*(" + type_pattern + r")\s*\)\s*\(?", line):
        rest = line[m.end() - 1:]
        yield m.start(), rest if not rest.startswith("(") else _balanced(line, m.end() - 1)


def _balanced(line: str, open_paren: int) -> str:
    depth = 0
    for i in range(open_paren, len(line)):
        if line[i] == "(":
            depth += 1
        elif line[i] == ")":
            depth -= 1
            if depth == 0:
                return line[open_paren + 1:i]
    return line[open_paren + 1:]


def is_masked(expr: str) -> bool:
    """True when the expression is already reduced below 32 bits via a
    mask, modulo, or shift before the cast."""
    return bool(re.search(r"[&%]|>>", expr))


def check_l2_l3() -> None:
    addr_expr = re.compile(r"\b\w*" + ADDR_WORD + r"\w*\b", re.IGNORECASE)
    for path in src_files((".h", ".cc")):
        text = strip_comments(path.read_text())
        for no, line in enumerate(text.splitlines(), 1):
            for _, expr in cast_sites(line, NARROW_UNSIGNED):
                if addr_expr.search(expr) and not is_masked(expr):
                    finding("L2", path, no,
                            f"cast truncates address expression `{expr.strip()}` "
                            "to <=32 bits; mask or shift the value first")
            for _, expr in cast_sites(line, NARROW_SIGNED):
                if addr_expr.search(expr) and not is_masked(expr):
                    finding("L3", path, no,
                            f"narrow signed cast of address expression "
                            f"`{expr.strip()}`; address math must stay unsigned")


# --------------------------------------------------------------------------
# L4: stateful components must be registered with the auditor
# --------------------------------------------------------------------------

CLASS_RE = re.compile(
    r"^\s*(?:class|struct)\s+([A-Z]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{",
    re.MULTILINE)


def class_bodies(text: str):
    """Yield (name, body, line_no) for top-level class/struct definitions."""
    lines = text.splitlines()
    joined = "\n".join(lines)
    for m in CLASS_RE.finditer(joined):
        name = m.group(1)
        body = _balanced_braces(joined, joined.index("{", m.start()))
        line_no = joined[:m.start()].count("\n") + 1
        yield name, body, line_no


def _balanced_braces(text: str, open_brace: int) -> str:
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace + 1:i]
    return text[open_brace + 1:]


def has_data_members(body: str) -> bool:
    # Strip nested braces (method bodies, nested types) so we only see
    # the class's own declaration lines.
    flat = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            flat.append(ch)
    member = re.compile(
        r"^\s*(?!using|typedef|friend|static\s+constexpr|static\s+const\b|enum\b)"
        r"[\w:<>,\s*&]+?\s+\w+_\s*(?:\[[^\]]*\]\s*)?(?:=[^;]*)?;", re.MULTILINE)
    return bool(member.search("".join(flat)))


def is_pure_interface(body: str) -> bool:
    return "= 0" in body and not has_data_members(body)


def check_l4() -> None:
    audit_text = AUDIT_CC.read_text() if AUDIT_CC.exists() else ""
    exempt = set(re.findall(r"LINT_AUDIT_EXEMPT:\s*(\w+)", audit_text))
    for sub in AUDITED_DIRS:
        for path in sorted((SRC / sub).glob("*.h")):
            text = strip_comments(path.read_text())
            for name, body, line_no in class_bodies(text):
                if not has_data_members(body):
                    continue
                if is_pure_interface(body):
                    continue
                if name in exempt:
                    continue
                if re.search(r"\b" + re.escape(name) + r"\b", audit_text):
                    continue
                finding("L4", path, line_no,
                        f"stateful component `{name}` has no coverage in "
                        "src/audit/audit.cc; add an auditor or a "
                        f"`LINT_AUDIT_EXEMPT: {name}` line with rationale")


# --------------------------------------------------------------------------
# L5: bare catch (...) must classify, not swallow
# --------------------------------------------------------------------------

CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")


def check_l5() -> None:
    for path in src_files((".h", ".cc")):
        stripped = strip_comments(path.read_text())
        # Annotations live in comments, so scan the raw text for them.
        raw_lines = path.read_text().splitlines()
        for no, line in enumerate(stripped.splitlines(), 1):
            if not CATCH_ALL_RE.search(line):
                continue
            raw = raw_lines[no - 1] if no <= len(raw_lines) else ""
            if "LINT_CATCH_OK" in raw:
                continue
            finding("L5", path, no,
                    "bare `catch (...)` without classification; map the "
                    "failure to a JobErrorCode (sim/jobs/job.h) or annotate "
                    "the line with `LINT_CATCH_OK: <why>`")


# --------------------------------------------------------------------------
# L6: no raw console output in library code
# --------------------------------------------------------------------------

CONSOLE_RE = re.compile(
    r"std::cout\b|std::cerr\b"
    r"|(?<!\w)(?:std::)?printf\s*\("        # snprintf/sprintf excluded
    r"|(?<!\w)(?:std::)?puts\s*\("
    r"|(?<!\w)(?:std::)?putchar\s*\("
    r"|(?<!\w)(?:std::)?v?fprintf\s*\(\s*(?:stdout|stderr)\b"
    r"|(?<!\w)(?:std::)?fputs?\s*\([^;]*,\s*(?:stdout|stderr)\s*\)"
    r"|(?<!\w)(?:std::)?fwrite\s*\([^;]*,\s*(?:stdout|stderr)\s*\)")


def check_l6() -> None:
    for path in src_files((".h", ".cc")):
        stripped = strip_comments(path.read_text())
        raw_lines = path.read_text().splitlines()
        for no, line in enumerate(stripped.splitlines(), 1):
            if not CONSOLE_RE.search(line):
                continue
            raw = raw_lines[no - 1] if no <= len(raw_lines) else ""
            if "LINT_LOG_OK" in raw:
                continue
            finding("L6", path, no,
                    "raw console output in library code; route progress "
                    "through src/telemetry/ or annotate a deliberate "
                    "report/diagnostic surface with `LINT_LOG_OK: <why>`")


def main() -> int:
    check_l1()
    check_l2_l3()
    check_l4()
    check_l5()
    check_l6()
    if not findings:
        print("lint_sim: clean (L1 raw-assert, L2 address truncation, "
              "L3 signed-narrowing, L4 audit coverage, L5 bare catch, "
              "L6 raw console output)")
        return 0
    for rule, path, line_no, message in findings:
        rel = path.relative_to(REPO)
        print(f"{rel}:{line_no}: [{rule}] {message}")
    print(f"lint_sim: {len(findings)} finding(s)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
