#!/usr/bin/env python3
"""Deprecated shim: the linter grew into the tools/simlint package.

Kept so muscle memory (`python3 tools/lint_sim.py`) and old docs keep
working; the package adds rules L7-L9, --fix, --explain, and a real
C++ lexer.  Prefer:  python3 -m tools.simlint
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))

from tools.simlint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--root", str(REPO)] + sys.argv[1:]))
