/**
 * @file
 * mokasim_cli — general-purpose simulator front-end.
 *
 * Run any roster workload or recorded trace under any page-cross
 * scheme / prefetcher combination, single- or multi-core, and emit a
 * table, CSV row, or JSON document.
 *
 * Usage:
 *   mokasim_cli --workload gap.csr.0 --prefetcher berti \
 *               --scheme dripper --insts 1000000 [--json|--csv]
 *   mokasim_cli --trace my.trc --scheme permit
 *   mokasim_cli --mix gap.csr.0,parsec.stream.0 --scheme dripper
 *   mokasim_cli --scheme dripper --telemetry-dir tele \
 *               --trace-events trace.json
 *   mokasim_cli --list
 *
 * Schemes: discard | permit | discard-ptw | iso | ppf | ppf-dthr |
 *          dripper | dripper-sf | dripper-2mb
 */
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "filter/policies.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "telemetry/timeseries.h"
#include "trace/suites.h"
#include "trace/trace_io.h"

using namespace moka;

namespace {

SchemeConfig
parse_scheme(const std::string &s, L1dPrefetcherKind kind)
{
    if (s == "permit") return scheme_permit();
    if (s == "discard-ptw") return scheme_discard_ptw();
    if (s == "iso") return scheme_iso_storage();
    if (s == "ppf") return scheme_ppf(false);
    if (s == "ppf-dthr") return scheme_ppf(true);
    if (s == "dripper") return scheme_dripper(kind);
    if (s == "dripper-sf") return scheme_dripper_sf(kind);
    if (s == "dripper-2mb") return scheme_dripper_filter_2mb(kind);
    return scheme_discard();
}

const WorkloadSpec *
find_spec(const std::vector<WorkloadSpec> &roster, const std::string &name)
{
    for (const WorkloadSpec &s : roster) {
        if (s.name == name) {
            return &s;
        }
    }
    return nullptr;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

void
print_human(const ResultRow &row)
{
    const RunMetrics &m = row.metrics;
    std::printf("workload    %s (%s)\n", row.workload.c_str(),
                row.suite.c_str());
    std::printf("scheme      %s, prefetcher %s\n", row.scheme.c_str(),
                row.prefetcher.c_str());
    std::printf("IPC         %.4f  (%llu instructions, %llu cycles)\n",
                m.ipc(), (unsigned long long)m.instructions,
                (unsigned long long)m.cycles);
    std::printf("MPKI        L1I %.2f  L1D %.2f  L2 %.2f  LLC %.2f  "
                "dTLB %.2f  sTLB %.2f\n",
                m.l1i_mpki(), m.l1d_mpki(), m.l2_mpki(), m.llc_mpki(),
                m.dtlb_mpki(), m.stlb_mpki());
    std::printf("prefetch    issued %llu  useful %llu  useless %llu  "
                "accuracy %.2f\n",
                (unsigned long long)m.pf_issued,
                (unsigned long long)m.pf_useful,
                (unsigned long long)m.pf_useless, m.pf_accuracy());
    std::printf("page-cross  cand %llu  issued %llu  dropped %llu  "
                "useful %llu  useless %llu  accuracy %.2f\n",
                (unsigned long long)m.pgc_candidates,
                (unsigned long long)m.pgc_issued,
                (unsigned long long)m.pgc_dropped,
                (unsigned long long)m.pgc_useful,
                (unsigned long long)m.pgc_useless, m.pgc_accuracy());
    std::printf("walks       demand %llu  speculative %llu\n",
                (unsigned long long)m.demand_walks,
                (unsigned long long)m.spec_walks);
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string workload_name = "parsec.stream.0";
    std::string trace_path;
    std::string mix_arg;
    std::string scheme_name = "dripper";
    std::string pf_name = "berti";
    std::string l2pf_name = "none";
    InstCount insts = 800'000;
    InstCount warmup = 200'000;
    double large_pages = 0.0;
    bool json = false, csv = false, list = false;
    std::string telemetry_dir, trace_events;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--workload") workload_name = next();
        else if (a == "--trace") trace_path = next();
        else if (a == "--mix") mix_arg = next();
        else if (a == "--scheme") scheme_name = next();
        else if (a == "--prefetcher") pf_name = next();
        else if (a == "--l2-prefetcher") l2pf_name = next();
        else if (a == "--insts") insts = std::stoull(next());
        else if (a == "--warmup") warmup = std::stoull(next());
        else if (a == "--large-pages") large_pages = std::stod(next());
        else if (a == "--telemetry-dir") telemetry_dir = next();
        else if (a == "--trace-events") trace_events = next();
        else if (a == "--json") json = true;
        else if (a == "--csv") csv = true;
        else if (a == "--list") list = true;
        else {
            std::fprintf(stderr, "unknown flag %s (see file header)\n",
                         a.c_str());
            return 1;
        }
    }

    const std::vector<WorkloadSpec> roster = seen_workloads();
    if (list) {
        for (const WorkloadSpec &s : roster) {
            std::printf("%-28s %s\n", s.name.c_str(), s.suite.c_str());
        }
        return 0;
    }

    const L1dPrefetcherKind kind = parse_l1d_kind(pf_name);
    const unsigned cores =
        mix_arg.empty() ? 1
                        : static_cast<unsigned>(split(mix_arg, ',').size());

    MachineConfig cfg = default_config(cores);
    cfg.l1d_prefetcher = kind;
    cfg.scheme = parse_scheme(scheme_name, kind);
    cfg.vmem.large_page_fraction = large_pages;
    if (l2pf_name == "spp") cfg.l2_prefetcher = L2PrefetcherKind::kSpp;
    if (l2pf_name == "ipcp") cfg.l2_prefetcher = L2PrefetcherKind::kIpcp;
    if (l2pf_name == "bop") cfg.l2_prefetcher = L2PrefetcherKind::kBop;

    // Assemble the workload list.
    std::vector<WorkloadPtr> workloads;
    std::vector<std::string> names, suites;
    if (!trace_path.empty()) {
        WorkloadPtr t = open_trace(trace_path);
        if (t == nullptr) {
            std::fprintf(stderr, "cannot load trace %s\n",
                         trace_path.c_str());
            return 1;
        }
        names.push_back(t->name());
        suites.push_back("TRACE");
        workloads.push_back(std::move(t));
    } else if (!mix_arg.empty()) {
        for (const std::string &n : split(mix_arg, ',')) {
            const WorkloadSpec *spec = find_spec(roster, n);
            if (spec == nullptr) {
                std::fprintf(stderr, "unknown workload %s\n", n.c_str());
                return 1;
            }
            names.push_back(spec->name);
            suites.push_back(spec->suite);
            workloads.push_back(make_workload(*spec));
        }
    } else {
        const WorkloadSpec *spec = find_spec(roster, workload_name);
        if (spec == nullptr) {
            std::fprintf(stderr, "unknown workload %s (try --list)\n",
                         workload_name.c_str());
            return 1;
        }
        names.push_back(spec->name);
        suites.push_back(spec->suite);
        workloads.push_back(make_workload(*spec));
    }

    std::unique_ptr<TelemetrySession> telemetry;
    if (!telemetry_dir.empty() || !trace_events.empty()) {
        telemetry = std::make_unique<TelemetrySession>(telemetry_dir,
                                                       trace_events);
    }
    std::string label = names[0];
    for (std::size_t c = 1; c < names.size(); ++c) {
        label += "+" + names[c];
    }
    label += "." + scheme_name;

    Machine machine(cfg, std::move(workloads));
    {
        ScopedRunTelemetry scoped(telemetry.get(), &machine, label, 0);
        RunTickHook *hook = scoped.hook(nullptr);
        scoped.span("warmup", [&] { machine.run(warmup, hook); });
        machine.start_measurement();
        scoped.span("measure", [&] { machine.run(insts, hook); });
    }
    if (telemetry != nullptr) {
        const std::string trace = telemetry->flush();
        if (!trace.empty()) {
            std::fprintf(stderr, "trace events written to %s\n",
                         trace.c_str());
        }
        if (!telemetry->dir().empty()) {
            std::fprintf(stderr, "epoch timeseries written to %s\n",
                         telemetry->dir().c_str());
        }
    }

    std::vector<ResultRow> rows;
    for (std::size_t c = 0; c < machine.num_cores(); ++c) {
        ResultRow row;
        row.workload = names[c];
        row.suite = suites[c];
        row.scheme = cfg.scheme.name;
        row.prefetcher = pf_name;
        row.metrics = machine.measured(c);
        rows.push_back(std::move(row));
    }

    if (csv) {
        write_csv(std::cout, rows);
    } else if (json) {
        for (const ResultRow &row : rows) {
            std::cout << to_json(row) << "\n";
        }
    } else {
        for (const ResultRow &row : rows) {
            print_human(row);
            if (rows.size() > 1) {
                std::printf("\n");
            }
        }
    }
    return 0;
}
