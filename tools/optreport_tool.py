#!/usr/bin/env python3
"""Ranked missed-optimization worklist for hot-reachable code.

The compiler already knows which inlines it gave up on and which
loops it failed to vectorize; simlint's hotpath model knows which
lines are reachable from a SIM_HOT root.  This tool joins the two:

  1. build the hot-reachability model over src/ (tools/simlint),
  2. recompile every file that owns hot code with optimization
     remarks enabled (GCC `-fopt-info-*-missed` by default, Clang
     `-Rpass-missed` when --compiler points at clang),
  3. keep only remarks that land inside a hot-reachable function,
  4. rank hot functions by remark pressure (vectorization misses
     weigh more than inline misses) and emit a worklist.

The result is where to spend optimization effort: a missed inline
on a cold reporting path is noise, the same remark inside
Cache::access is the next perf PR.

Usage:
  python3 tools/optreport_tool.py                # text worklist
  python3 tools/optreport_tool.py --format=json  # machine-readable
  python3 tools/optreport_tool.py --limit 10 src/cache/cache.cc

stdlib-only; requires a C++20 compiler on PATH (g++ by default).
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))

from tools.simlint import hotpath  # noqa: E402
from tools.simlint.model import Project  # noqa: E402

# file:line:col: missed: message  (GCC -fopt-info-*-missed) or
# file:line:col: remark: message [-Rpass-missed=...]  (Clang)
REMARK_RE = re.compile(
    r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):(?:\d+:)?\s*"
    r"(?:missed:|remark:)\s*(?P<msg>.*)$"
)

# Weight per remark class: failing to vectorize a hot loop costs a
# multiple of a single call that stayed outlined.
WEIGHTS = (
    ("vector", 4.0),
    ("unroll", 2.0),
    ("inlin", 1.0),  # "inlining", "inlined", "not inlinable"
)

GCC_REMARK_FLAGS = [
    "-fopt-info-inline-missed",
    "-fopt-info-vec-missed",
    "-fopt-info-loop-missed",
]
CLANG_REMARK_FLAGS = [
    "-Rpass-missed=inline",
    "-Rpass-missed=loop-vectorize",
    "-Rpass-missed=loop-unroll",
]


def remark_weight(msg: str) -> float:
    lowered = msg.lower()
    for needle, weight in WEIGHTS:
        if needle in lowered:
            return weight
    return 1.0


def is_clang(compiler: str) -> bool:
    return "clang" in Path(compiler).name


def compile_flags(compiler: str) -> list:
    flags = [
        compiler,
        "-std=c++20",
        "-O2",
        "-c",
        "-o",
        "/dev/null",
        "-I",
        str(REPO / "src"),
    ]
    flags += CLANG_REMARK_FLAGS if is_clang(compiler) else GCC_REMARK_FLAGS
    return flags


def collect_remarks(compiler: str, source: Path) -> list:
    """[(line, message)] optimization remarks for one source file."""
    proc = subprocess.run(
        compile_flags(compiler) + [str(source)],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{source}: remark compile failed:\n{proc.stderr[:2000]}"
        )
    out = []
    for raw in proc.stderr.splitlines():
        m = REMARK_RE.match(raw.strip())
        if m is None:
            continue
        remark_file = Path(m.group("file"))
        # Keep remarks attributed to this file or headers it pulled
        # in from src/ (inline hot code lives in headers).
        if remark_file.is_absolute():
            try:
                remark_file = remark_file.relative_to(REPO)
            except ValueError:
                continue
        out.append((str(remark_file), int(m.group("line")), m.group("msg")))
    return out


def hot_sources(project: Project, model, only: list) -> list:
    """Project .cc files owning at least one hot-reachable span."""
    picked = []
    for sf in project.src_files():
        if sf.path.suffix != ".cc":
            continue
        if only and str(sf.rel) not in only:
            continue
        if model.hot_spans(sf):
            picked.append(sf)
    return picked


def build_worklist(project: Project, model, compiler: str, only: list):
    # Hot spans per rel-path so header remarks can be joined too.
    spans_by_rel = {}
    fn_by_rel = defaultdict(list)
    for sf in project.src_files():
        spans = model.hot_spans(sf)
        if spans:
            spans_by_rel[str(sf.rel)] = spans
        for d in model.hot_defs:
            if d.sf is sf:
                fn_by_rel[str(sf.rel)].append(d)

    entries = defaultdict(
        lambda: {"score": 0.0, "remarks": [], "qual": "", "file": "",
                 "line": 0}
    )
    compiled = 0
    for sf in hot_sources(project, model, only):
        for rel, line, msg in collect_remarks(compiler, sf.path):
            # `src/...`-relative join key (remarks may cite headers).
            key_rel = rel if rel in spans_by_rel else f"src/{rel}"
            if key_rel not in spans_by_rel:
                continue
            owner = None
            for d in fn_by_rel[key_rel]:
                if d.start_line <= line <= d.end_line:
                    owner = d
                    break
            if owner is None:
                continue
            e = entries[owner.qual]
            e["qual"] = owner.qual
            e["file"] = key_rel
            e["line"] = owner.start_line
            e["score"] += remark_weight(msg)
            e["remarks"].append({"line": line, "message": msg})
        compiled += 1
    ranked = sorted(
        entries.values(), key=lambda e: (-e["score"], e["qual"])
    )
    return ranked, compiled


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="rank missed optimizations on hot-reachable code"
    )
    ap.add_argument("files", nargs="*",
                    help="restrict to these src/ .cc files")
    ap.add_argument("--compiler", default="g++",
                    help="compiler driver (default: g++; clang "
                         "switches to -Rpass-missed remarks)")
    ap.add_argument("--format", choices=("text", "json"),
                    default="text")
    ap.add_argument("--limit", type=int, default=20,
                    help="worklist entries to print (default 20)")
    args = ap.parse_args(argv)

    project = Project(REPO)
    model = hotpath.analyze(project)
    ranked, compiled = build_worklist(
        project, model, args.compiler, args.files
    )
    ranked = ranked[: args.limit]

    if args.format == "json":
        print(json.dumps({
            "compiler": args.compiler,
            "files_compiled": compiled,
            "worklist": ranked,
        }, indent=2))
        return 0

    print(f"optreport: {compiled} hot file(s) compiled with remark "
          f"flags ({args.compiler})")
    if not ranked:
        print("optreport: no missed-optimization remarks land in "
              "hot-reachable code")
        return 0
    for rank, e in enumerate(ranked, 1):
        print(f"{rank:2}. [{e['score']:6.1f}] {e['qual']} "
              f"({e['file']}:{e['line']}, {len(e['remarks'])} remark(s))")
        for r in e["remarks"][:3]:
            print(f"       L{r['line']}: {r['message'][:100]}")
        if len(e["remarks"]) > 3:
            print(f"       ... {len(e['remarks']) - 3} more")
    return 0


if __name__ == "__main__":
    sys.exit(main())
