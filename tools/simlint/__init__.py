"""simlint — mokasim's repo-specific static analyzer.

Generic tooling (clang-tidy, -Wall -Wextra, -Wthread-safety) cannot
express the project's own correctness conventions; simlint enforces
them as a rule-plugin package:

  L1  no raw assert / <cassert> in src/ (use common/check.h)
  L2  no truncating casts of address expressions to <=32 bits
  L3  no narrow signed casts of address expressions
  L4  stateful components must be covered by src/audit/audit.cc
  L5  no bare catch (...) without classification
  L6  no raw console output in library code
  L7  determinism: no wall clocks / rand / unordered iteration or
      pointer-keyed ordering on result paths
  L8  stats completeness: every *Stats counter must be read by a
      report path and covered by a reset/delta path
  L9  concurrency: no bare std::mutex; SimMutex members must guard
      something (see common/thread_annotations.h)

Run from the repository root:

  python3 -m tools.simlint               # lint the repo
  python3 -m tools.simlint --explain L7  # what a rule means and why
  python3 -m tools.simlint --fix         # apply mechanical fixes
  python3 -m tools.simlint --root DIR    # lint another tree (fixtures)

Exit status is non-zero when any finding remains.
"""

from tools.simlint.api import lint, main  # noqa: F401

__all__ = ["lint", "main"]
