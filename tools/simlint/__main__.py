import sys

from tools.simlint.api import main

if __name__ == "__main__":
    sys.exit(main())
