"""Programmatic entry points and the command-line interface."""

from __future__ import annotations

import argparse
import sys
import textwrap
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import tools.simlint.rules  # noqa: F401  (registers the built-in rules)
from tools.simlint.model import Finding, Project
from tools.simlint.registry import RULES, all_rules


def lint(root: Path, rule_ids: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the selected rules (default: all) over the tree at *root*."""
    project = Project(Path(root))
    selected = all_rules()
    if rule_ids is not None:
        unknown = sorted(set(rule_ids) - set(RULES))
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
        selected = [r for r in selected if r.id in set(rule_ids)]
    findings: List[Finding] = []
    for r in selected:
        findings.extend(r.check(project))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings


def apply_fixes(findings: List[Finding]) -> int:
    """Apply full-line replacements for findings that carry one.

    Returns the number of lines rewritten.  Multiple fixes to one file
    are applied together; findings without a replacement are ignored.
    """
    by_file: Dict[Path, List[Finding]] = defaultdict(list)
    for f in findings:
        if f.replacement is not None:
            by_file[f.path].append(f)
    fixed = 0
    for path, todo in by_file.items():
        lines = path.read_text().splitlines(keepends=True)
        for f in todo:
            if 1 <= f.line <= len(lines):
                eol = "\n" if lines[f.line - 1].endswith("\n") else ""
                lines[f.line - 1] = f.replacement + eol
                fixed += 1
        path.write_text("".join(lines))
    return fixed


def _render_github(f: Finding, root: Path) -> str:
    """One finding as a GitHub Actions workflow command.

    `::error file=...,line=...` lines make the runner annotate the
    offending source lines directly in pull-request diffs.
    """
    try:
        rel = f.path.relative_to(root)
    except ValueError:
        rel = f.path
    # Workflow-command payloads are %-escaped, not quoted.
    msg = (
        f.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::error file={rel},line={f.line},"
        f"title=simlint {f.rule}::{msg}"
    )


def _explain(rule_id: str) -> int:
    if rule_id not in RULES:
        print(f"simlint: unknown rule `{rule_id}`; try --list", file=sys.stderr)
        return 2
    r = RULES[rule_id]
    print(f"{r.id}: {r.title}\n")
    print(textwrap.dedent(r.doc).strip())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python3 -m tools.simlint",
        description="mokasim's repo-specific static analyzer",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="project root to lint (default: current directory; "
        "fixtures pass their own mini-tree here)",
    )
    parser.add_argument(
        "--rules",
        metavar="L1,L7,...",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes where a rule offers one, then re-check",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print what a rule enforces and why, then exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output: `text` (default) or `github` workflow "
        "commands, which annotate the offending lines in pull-request "
        "diffs",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)
    if args.list:
        for r in all_rules():
            print(f"{r.id}  {r.title}")
        return 0

    rule_ids = args.rules.split(",") if args.rules else None
    try:
        findings = lint(args.root, rule_ids)
    except KeyError as err:
        print(f"simlint: {err.args[0]}", file=sys.stderr)
        return 2

    if args.fix and findings:
        fixed = apply_fixes(findings)
        if fixed:
            print(f"simlint: fixed {fixed} line(s), re-checking")
            findings = lint(args.root, rule_ids)

    root = Path(args.root).resolve()
    if not findings:
        ran = all_rules() if rule_ids is None else [RULES[i] for i in rule_ids]
        print(
            "simlint: clean ("
            + ", ".join(f"{r.id} {r.title}" for r in ran)
            + ")"
        )
        return 0
    for f in findings:
        if args.format == "github":
            print(_render_github(f, root))
        else:
            print(f.render(root))
    print(f"simlint: {len(findings)} finding(s)")
    return 1
