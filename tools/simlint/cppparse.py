"""Small structural helpers over lexed C++ text.

These work on *code* text (see :mod:`tools.simlint.lexer`), so brace
and paren counting is not fooled by comments or string literals.
"""

from __future__ import annotations

import re
from typing import Iterator, Tuple

CLASS_RE = re.compile(
    r"^\s*(?:class|struct)\s+([A-Z]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{",
    re.MULTILINE,
)


def balanced_parens(text: str, open_paren: int) -> str:
    """Contents of the paren group opening at *open_paren*."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


def balanced_braces(text: str, open_brace: int) -> str:
    """Contents of the brace block opening at *open_brace*."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace + 1 : i]
    return text[open_brace + 1 :]


def class_bodies(code: str) -> Iterator[Tuple[str, str, int]]:
    """Yield (name, body, line_no) for class/struct definitions."""
    for m in CLASS_RE.finditer(code):
        name = m.group(1)
        body = balanced_braces(code, code.index("{", m.start()))
        line_no = code[: m.start()].count("\n") + 1
        yield name, body, line_no


def depth0(body: str) -> str:
    """Strip nested brace blocks, keeping only the outermost level.

    Newlines inside stripped blocks are preserved so line-oriented
    regexes see the original vertical layout.
    """
    flat = []
    depth = 0
    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            flat.append(ch)
        elif ch == "\n":
            flat.append(ch)
    return "".join(flat)


def has_data_members(body: str) -> bool:
    member = re.compile(
        r"^\s*(?!using|typedef|friend|static\s+constexpr|static\s+const\b|enum\b)"
        r"[\w:<>,\s*&]+?\s+\w+_\s*(?:\[[^\]]*\]\s*)?(?:=[^;]*)?;",
        re.MULTILINE,
    )
    return bool(member.search(depth0(body)))


def is_pure_interface(body: str) -> bool:
    return "= 0" in body and not has_data_members(body)


# Stream-ish left operands for shift disambiguation: std streams,
# plus the local naming convention for writers and string builders.
_STREAM_LHS_RE = re.compile(
    r"(?:^|::)(?:c(?:out|err|log)|\w*(?:os|ss|stream|sink|log|out))$"
)

_SHIFT_RE = re.compile(r"(<<|>>)=?")


def shift_sites(line: str) -> Iterator[Tuple[int, str, str]]:
    """Yield (column, op, rhs) for *arithmetic* shifts on a code line.

    ``<<`` / ``>>`` are three different things in C++: a shift, a
    stream insertion/extraction, and (for ``>>``) a nested-template
    closer.  Rules that reason about shift *amounts* (page geometry)
    must not fire on ``os << 12`` or ``std::vector<Foo<T>>``.  The
    disambiguation is lexical:

    * the operator is a stream op when the nearest token to its left
      is a stream-ish identifier (``cout``/``cerr``/``clog`` or a
      local name ending in os/ss/stream/sink/log/out), or when a
      string literal delimiter directly abuts either side — stream
      chains interleave literals, shifts never do;
    * a ``>>`` whose right-hand side is not an expression head
      (identifier, number, or ``(``) is a template closer, not a
      shift — callers only see sites with a real rhs.

    The rhs returned is the text from just past the operator to the
    end of the line; callers match their own amount patterns on it.
    Stream-ness propagates down the chain: once an operator is
    classified as a stream op, every later operator before the next
    ``;`` belongs to the same chain (``os << 21 << x``).
    """
    stream_until = -1
    for m in _SHIFT_RE.finditer(line):
        if m.start() < stream_until:
            continue  # inside an already-classified stream chain
        left = line[: m.start()].rstrip()
        right = line[m.end() :]
        semi = line.find(";", m.end())
        chain_end = len(line) if semi == -1 else semi
        # String literal hugging the operator: stream chain.
        if left.endswith('"') or right.lstrip().startswith('"'):
            stream_until = chain_end
            continue
        lhs_tok = re.search(r"([A-Za-z_][\w:]*)$", left)
        if lhs_tok and _STREAM_LHS_RE.search(lhs_tok.group(1)):
            stream_until = chain_end
            continue
        if not re.match(r"\s*(?:[A-Za-z_0-9(~]|$)", right):
            continue  # template closer / operator soup
        yield m.start(), m.group(1), right


def cast_sites(line: str, type_pattern: str):
    """Yield (column, inner_expression) for static_cast<T>(expr) and
    C-style (T)(expr) casts whose T matches *type_pattern*."""
    for m in re.finditer(
        r"static_cast\s*<\s*(" + type_pattern + r")\s*>\s*\(", line
    ):
        yield m.start(), balanced_parens(line, m.end() - 1)
    for m in re.finditer(r"\(\s*(" + type_pattern + r")\s*\)\s*\(?", line):
        rest = line[m.end() - 1 :]
        yield m.start(), (
            rest if not rest.startswith("(") else balanced_parens(line, m.end() - 1)
        )
