"""Hot-path reachability model (the SIM_HOT contract).

src/common/hot_path.h introduces two declaration annotations:

* ``SIM_HOT`` marks a per-access root (Machine::run's access
  pipeline, Cache::access, Prefetcher::on_access, the filter's
  permit(), UpdateBuffer::insert/take);
* ``SIM_COLD`` marks an amortized/cadence/failure path that stops the
  traversal (interval ticks, audit sweeps, error reporting).

This module builds a lexer-level call graph over the project (the
same comment/literal-blanked *code* text every other rule uses) and
computes the set of functions reachable from SIM_HOT roots without
passing through a SIM_COLD declaration.  Rules L10-L14 then enforce
the hot-path contract only inside those function bodies, and
tools/optreport_tool.py joins compiler optimization remarks against
the same set to rank the speedup worklist.

The call graph is deliberately over-approximate at call sites — a
call ``foo(...)`` reaches *every* project function named ``foo``, so
virtual overrides and overloads are all pulled in, which errs on the
side of checking too much (the correct direction for a perf
contract).  Annotations, however, bind precisely: a SIM_HOT/SIM_COLD
inside ``class Machine``'s body keys ``Machine::run``, so marking
``JobEngine::run`` SIM_COLD cannot un-root the machine loop that
happens to share the bare name.  Namespace-scope annotations (the
free functions in check.h) key the bare name.  Only functions
*defined in the tree* are traversed; std:: calls terminate.

Parsing relies on the repo's formatting convention (out-of-line
definitions start at column 0 as ``Qualified::name(...)`` with the
return type on the previous line) plus a class-body scan for inline
member functions, so both .cc and .h definitions are covered.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Set, Tuple

from tools.simlint.cppparse import balanced_braces, balanced_parens, class_bodies
from tools.simlint.lexer import line_of
from tools.simlint.model import Project, SourceFile

# Identifiers that look like calls but are not, plus std::atomic's
# method names — `value_.load(...)` is not a call into a project
# function that happens to be named `load` (Journal::load) — plus the
# strong-address escape hatch: `addr.raw()` is StrongAddr/StrongPageNum
# accessor traffic, not a call into SnapshotWriter::raw.
_NOT_CALLS = frozenset(
    """
    if for while switch return sizeof alignof alignas decltype typeid
    catch new delete static_assert defined assert noexcept throw
    static_cast dynamic_cast reinterpret_cast const_cast
    SIM_REQUIRE SIM_AUDIT SIM_AUDIT_FAIL SIM_HOT SIM_COLD
    load store exchange fetch_add fetch_sub fetch_and fetch_or
    compare_exchange_weak compare_exchange_strong
    raw
    """.split()
)

# An identifier followed by an open paren: candidate call site.
_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Out-of-line definition head at column 0: `Class::name(` / `name(`.
_OUTLINE_HEAD_RE = re.compile(
    r"^((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\(", re.MULTILINE
)

# Tokens allowed between `)` and the body `{` of a definition.
_TAIL_TOKEN_RE = re.compile(
    r"\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+?)?\s*"
)

# SIM_HOT / SIM_COLD annotation followed (on the same declaration) by
# the function name — the first identifier directly ahead of a `(`.
_ANNOT_RE = re.compile(r"\b(SIM_HOT|SIM_COLD)\b")


@dataclasses.dataclass
class FuncDef:
    """One function definition found in the tree."""

    name: str        #: bare name ("access")
    qual: str        #: qualified name ("Cache::access") when known
    sf: SourceFile   #: defining file
    start_line: int  #: 1-based line of the definition head
    end_line: int    #: 1-based line of the closing brace
    body: str        #: code text of the body (braces excluded)
    params: str      #: code text of the parameter list


def _skip_to_body(code: str, close_paren: int) -> int:
    """Offset of the body `{` after a definition's `)`, or -1.

    Handles trailing qualifiers (const/noexcept/override/final),
    trailing return types, and constructor initializer lists
    (`: member_(expr), ...`).  Returns -1 for declarations (`;`),
    pure-virtuals (`= 0;`), and deleted/defaulted definitions.
    """
    i = close_paren + 1
    n = len(code)
    depth = 0
    while i < n:
        c = code[i]
        if depth == 0 and c == "{":
            return i
        if depth == 0 and c == ";":
            return -1
        if depth == 0 and c == "=":
            # `= 0;`, `= default;`, `= delete;`
            return -1
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        i += 1
    return -1


def _close_of(code: str, open_paren: int) -> int:
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def _outline_defs(sf: SourceFile) -> List[FuncDef]:
    code = sf.code
    out: List[FuncDef] = []
    for m in _OUTLINE_HEAD_RE.finditer(code):
        name = m.group(1)
        bare = name.rsplit("::", 1)[-1]
        if bare.startswith("~") or bare in _NOT_CALLS:
            continue
        open_paren = code.index("(", m.end() - 1)
        close = _close_of(code, open_paren)
        body_open = _skip_to_body(code, close)
        if body_open < 0:
            continue
        body = balanced_braces(code, body_open)
        start = line_of(code, m.start())
        end = line_of(code, body_open) + body.count("\n") + 1
        out.append(
            FuncDef(
                bare,
                name if "::" in name else bare,
                sf,
                start,
                end,
                body,
                code[open_paren + 1 : close],
            )
        )
    return out


# Inline member definition inside a class body: `name(...)` followed
# by a `{` (after qualifiers).  The body scan works on the class-body
# slice, so line numbers are rebased by the class's own line.
_INLINE_HEAD_RE = re.compile(r"\b(~?[A-Za-z_]\w*)\s*\(")


def _inline_defs(sf: SourceFile) -> List[FuncDef]:
    code = sf.code
    out: List[FuncDef] = []
    for body_start, body_end, cls in _class_spans(code):
        # Work on the body slice; line numbers come from the slice's
        # absolute offset so `{` placement cannot skew them.
        body = code[body_start + 1 : body_end - 1]
        seen_spans: List[Tuple[int, int]] = []
        for m in _INLINE_HEAD_RE.finditer(body):
            if any(a <= m.start() < b for a, b in seen_spans):
                continue  # call inside an already-recorded method body
            name = m.group(1)
            if name.startswith("~") or name in _NOT_CALLS:
                continue
            open_paren = body.index("(", m.end() - 1)
            close = _close_of(body, open_paren)
            body_open = _skip_to_body(body, close)
            if body_open < 0:
                continue
            fn_body = balanced_braces(body, body_open)
            seen_spans.append((body_open, body_open + len(fn_body) + 2))
            start = line_of(code, body_start + 1 + m.start())
            end = (line_of(code, body_start + 1 + body_open)
                   + fn_body.count("\n") + 1)
            out.append(
                FuncDef(
                    name,
                    f"{cls}::{name}",
                    sf,
                    start,
                    end,
                    fn_body,
                    body[open_paren + 1 : close],
                )
            )
    return out


def _class_spans(code: str) -> List[Tuple[int, int, str]]:
    """(body_start, body_end, class_name) for every class/struct."""
    from tools.simlint.cppparse import CLASS_RE

    spans: List[Tuple[int, int, str]] = []
    for m in CLASS_RE.finditer(code):
        open_brace = code.index("{", m.start())
        body = balanced_braces(code, open_brace)
        spans.append((open_brace, open_brace + len(body) + 2, m.group(1)))
    return spans


def _annotated_keys(project: Project) -> Tuple[Set[str], Set[str]]:
    """Keys declared SIM_HOT / SIM_COLD anywhere in the tree.

    A key is ``Class::name`` when the annotation sits inside a class
    body (binding exactly that member), or the bare ``name`` for
    namespace-scope declarations (binding every same-named def).
    """
    hot: Set[str] = set()
    cold: Set[str] = set()
    for sf in project.src_files():
        code = sf.code
        cls_spans = _class_spans(code)
        for m in _ANNOT_RE.finditer(code):
            call = _CALL_RE.search(code, m.end())
            if call is None:
                continue
            # Skip over type tokens: the function name is the first
            # identifier *directly* followed by `(` after the
            # annotation, within the same statement.
            stmt_end = code.find(";", m.end())
            brace = code.find("{", m.end())
            if brace != -1 and (stmt_end == -1 or brace < stmt_end):
                stmt_end = brace
            if stmt_end != -1 and call.start() > stmt_end:
                continue
            name = call.group(1)
            # Innermost enclosing class, if any.
            encl = [c for a, b, c in cls_spans if a <= m.start() < b]
            key = f"{encl[-1]}::{name}" if encl else name
            # Out-of-line heads are already qualified.
            if "::" in code[m.end():call.start()]:
                qual_head = re.search(
                    r"((?:[A-Za-z_]\w*::)+)$", code[m.end():call.start()].strip()
                )
                if qual_head:
                    key = qual_head.group(1) + name
            (hot if m.group(1) == "SIM_HOT" else cold).add(key)
    return hot, cold


def _matches(d: "FuncDef", keys: Set[str]) -> bool:
    return d.qual in keys or d.name in keys


@dataclasses.dataclass
class HotModel:
    """The computed hot-reachable set for one project."""

    defs: List[FuncDef]
    hot_keys: Set[str]     #: SIM_HOT annotation keys (roots)
    cold_keys: Set[str]    #: SIM_COLD annotation keys (traversal stops)
    hot_defs: List[FuncDef]  #: definitions reachable from the roots
    #: per-file hot spans: path -> [(start_line, end_line, FuncDef)]
    spans: Dict[str, List[Tuple[int, int, FuncDef]]]
    #: reached-via edges for diagnostics: id(def) -> caller FuncDef
    via: Dict[int, "FuncDef"]

    def hot_functions(self) -> List[FuncDef]:
        return list(self.hot_defs)

    def hot_spans(self, sf: SourceFile) -> List[Tuple[int, int, FuncDef]]:
        return self.spans.get(sf.rel, [])

    def chain(self, d: FuncDef) -> List[str]:
        """Root-to-*d* qualified-name chain (diagnostics)."""
        names = [d.qual]
        seen = {id(d)}
        while id(d) in self.via:
            d = self.via[id(d)]
            if id(d) in seen:
                break
            seen.add(id(d))
            names.append(d.qual)
        return list(reversed(names))


def _calls_in(body: str) -> Set[str]:
    return {
        m.group(1)
        for m in _CALL_RE.finditer(body)
        if m.group(1) not in _NOT_CALLS
    }


def analyze(project: Project) -> HotModel:
    """Build (and cache on *project*) the hot-reachability model."""
    cached = getattr(project, "_hotpath_model", None)
    if cached is not None:
        return cached

    defs: List[FuncDef] = []
    for sf in project.src_files():
        defs.extend(_outline_defs(sf))
        defs.extend(_inline_defs(sf))

    by_name: Dict[str, List[FuncDef]] = {}
    for d in defs:
        by_name.setdefault(d.name, []).append(d)

    hot_keys, cold_keys = _annotated_keys(project)

    # BFS over *definitions*: a call site fans out to every def of
    # the callee name (over-approximate), but SIM_COLD stops exactly
    # the annotated def (qualified key) or the whole name family
    # (namespace-scope key) — cold bodies are exempt, not traversed.
    visited: Set[int] = set()
    via: Dict[int, FuncDef] = {}
    frontier: List[FuncDef] = [
        d for d in defs if _matches(d, hot_keys) and not _matches(d, cold_keys)
    ]
    visited.update(id(d) for d in frontier)
    while frontier:
        d = frontier.pop()
        for callee in _calls_in(d.body):
            for target in by_name.get(callee, []):
                if id(target) in visited or _matches(target, cold_keys):
                    continue
                visited.add(id(target))
                via[id(target)] = d
                frontier.append(target)

    hot_defs = [d for d in defs if id(d) in visited]
    spans: Dict[str, List[Tuple[int, int, FuncDef]]] = {}
    for d in hot_defs:
        spans.setdefault(d.sf.rel, []).append((d.start_line, d.end_line, d))
    for lst in spans.values():
        lst.sort()

    model = HotModel(defs, hot_keys, cold_keys, hot_defs, spans, via)
    project._hotpath_model = model  # type: ignore[attr-defined]
    return model


def hot_function_at(model: HotModel, sf: SourceFile, line: int):
    """The hot FuncDef whose body span covers *line*, or None."""
    for start, end, d in model.hot_spans(sf):
        if start <= line <= end:
            return d
        if start > line:
            break
    return None
