"""C++-aware text preparation for simlint rules.

Rules match regexes against *code* text: the original file with
comment and literal contents blanked out, byte-for-byte aligned with
the raw text (newlines are preserved, everything else is replaced by
spaces).  Getting this right is what keeps every rule honest; the
previous generation of the linter used a line-oriented stripper that
mis-handled raw string literals and escaped quotes, so e.g. a
``R"(assert()"`` inside a test string produced a false L1 finding and
a ``"\""`` could hide real code from every rule.

Handled here:

* ``//`` and ``/* ... */`` comments (including ``//`` with a trailing
  backslash continuation),
* string and character literals with escape sequences,
* encoding prefixes ``u8``, ``u``, ``U``, ``L`` on either kind,
* raw string literals ``R"delim( ... )delim"`` with any delimiter and
  any prefix, whose contents may span lines and contain ``//`` or
  quotes,
* digit separators (``1'000'000``) — the ``'`` does not open a
  character literal when it follows an identifier character.

The delimiting quotes themselves are kept so that rules can still see
"there is a string literal here"; only the contents are blanked.
"""

from __future__ import annotations

_IDENT = set("abcdefghijklmnopqrstuvwxyz" "ABCDEFGHIJKLMNOPQRSTUVWXYZ" "0123456789_")

_PREFIXES = ("u8", "u", "U", "L")


def _blank(text: str) -> str:
    """Replace every character except newlines with a space."""
    return "".join("\n" if c == "\n" else " " for c in text)


def _has_prefix_before(text: str, i: int) -> bool:
    """True if text[..i] ends with an encoding prefix that is itself a
    standalone token (``u8"x"`` yes, ``menu"x"`` no)."""
    for p in _PREFIXES:
        start = i - len(p)
        if start >= 0 and text[start:i] == p:
            if start == 0 or text[start - 1] not in _IDENT:
                return True
    return False


def strip_code(text: str) -> str:
    """Return *text* with comments and literal contents blanked.

    The result has the same length and the same newline positions as
    the input, so line/column arithmetic carries over unchanged.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        # ---- comments -------------------------------------------------
        if c == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                j = i
                while j < n and text[j] != "\n":
                    # A line comment ending in a backslash continues
                    # onto the next physical line.
                    if text[j] == "\\" and j + 1 < n and text[j + 1] == "\n":
                        j += 2
                        continue
                    j += 1
                out.append(_blank(text[i:j]))
                i = j
                continue
            if nxt == "*":
                j = text.find("*/", i + 2)
                j = n if j == -1 else j + 2
                out.append(_blank(text[i:j]))
                i = j
                continue
        # ---- raw string literals -------------------------------------
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            standalone = (i == 0 or text[i - 1] not in _IDENT) or _has_prefix_before(
                text, i
            )
            if standalone:
                lparen = text.find("(", i + 2)
                # The delimiter may not contain spaces, parens or
                # backslashes and is at most 16 chars.
                delim = text[i + 2 : lparen] if lparen != -1 else None
                if (
                    delim is not None
                    and len(delim) <= 16
                    and not any(ch in ' ()\\\n"' for ch in delim)
                ):
                    closer = ")" + delim + '"'
                    end = text.find(closer, lparen + 1)
                    end = n if end == -1 else end + len(closer)
                    # Keep R"…( and )…" so rules can tell a literal is
                    # present; blank only the contents.
                    head = i + 2 + len(delim) + 1  # past the opening (
                    body_end = max(head, end - len(closer))
                    out.append(text[i:head])
                    out.append(_blank(text[head:body_end]))
                    out.append(text[body_end:end])
                    i = end
                    continue
        # ---- ordinary string / char literals -------------------------
        if c == '"' or c == "'":
            if c == "'":
                # Digit separator (1'000) or part of an identifier-ish
                # token: previous char is alphanumeric/underscore and
                # not an encoding prefix.
                if (
                    i > 0
                    and text[i - 1] in _IDENT
                    and not _has_prefix_before(text, i)
                ):
                    out.append(c)
                    i += 1
                    continue
            j = i + 1
            while j < n:
                if text[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if text[j] == c:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated literal: stop at EOL
                    break
                j += 1
            out.append(c)
            inner_end = j - 1 if j <= n and text[j - 1 : j] == c and j - 1 > i else j
            out.append(_blank(text[i + 1 : inner_end]))
            if inner_end < j:
                out.append(text[inner_end:j])
            i = j
            continue
        out.append(c)
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    """1-based line number of *offset* in *text*."""
    return text.count("\n", 0, offset) + 1
