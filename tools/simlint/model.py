"""Project / file / finding model shared by all simlint rules."""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.simlint.lexer import strip_code


@dataclasses.dataclass
class Finding:
    """One rule violation.

    ``replacement``, when set, is a full-line substitution that
    ``--fix`` may apply to the *raw* line (1-based ``line``).
    """

    rule: str
    path: Path
    line: int
    message: str
    replacement: Optional[str] = None

    def render(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """A lazily-lexed C++ source file."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.root = root
        self._raw: Optional[str] = None
        self._code: Optional[str] = None

    @property
    def rel(self) -> str:
        return self.path.relative_to(self.root).as_posix()

    @property
    def raw(self) -> str:
        if self._raw is None:
            self._raw = self.path.read_text(errors="replace")
        return self._raw

    @property
    def raw_lines(self) -> List[str]:
        return self.raw.splitlines()

    @property
    def code(self) -> str:
        """Raw text with comments and literal contents blanked."""
        if self._code is None:
            self._code = strip_code(self.raw)
        return self._code

    @property
    def code_lines(self) -> List[str]:
        return self.code.splitlines()

    def annotated(self, line: int, tag: str, lookback: int = 2) -> bool:
        """True if *tag* appears in the raw text on 1-based ``line`` or
        on up to *lookback* immediately preceding lines.  Escape
        annotations (``LINT_*``) live in comments, usually directly
        above the statement they describe."""
        lines = self.raw_lines
        lo = max(0, line - 1 - lookback)
        return any(tag in lines[i] for i in range(lo, min(line, len(lines))))


class Project:
    """The tree under ``--root``: the real repo or a fixture tree."""

    SRC_SUFFIXES = (".h", ".cc")

    def __init__(self, root: Path):
        self.root = root.resolve()
        self._files: Dict[Path, SourceFile] = {}
        self._src_cache: Optional[Tuple[SourceFile, ...]] = None

    def file(self, path: Path) -> SourceFile:
        path = path.resolve()
        if path not in self._files:
            self._files[path] = SourceFile(path, self.root)
        return self._files[path]

    def src_files(self) -> Tuple[SourceFile, ...]:
        """All C++ sources under src/, sorted for stable output."""
        if self._src_cache is None:
            src = self.root / "src"
            paths = sorted(
                p
                for p in src.rglob("*")
                if p.is_file() and p.suffix in self.SRC_SUFFIXES
            ) if src.is_dir() else []
            self._src_cache = tuple(self.file(p) for p in paths)
        return self._src_cache

    def maybe(self, rel: str) -> Optional[SourceFile]:
        p = self.root / rel
        return self.file(p) if p.is_file() else None
