"""Rule plugin registry.

A rule is a function ``(Project) -> list[Finding]`` registered with
the :func:`rule` decorator; its docstring doubles as the ``--explain``
text.  Importing :mod:`tools.simlint.rules` registers the built-in
rule set; out-of-tree rules only need to import this module and
decorate a function before :func:`tools.simlint.api.lint` runs.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, List

from tools.simlint.model import Finding, Project

CheckFn = Callable[[Project], List[Finding]]


@dataclasses.dataclass
class Rule:
    id: str
    title: str
    check: CheckFn
    doc: str


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, title: str) -> Callable[[CheckFn], CheckFn]:
    def deco(fn: CheckFn) -> CheckFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, title, fn, inspect.getdoc(fn) or title)
        return fn

    return deco


def all_rules() -> List[Rule]:
    """Rules in id order (L1, L2, ... L10 sorts numerically)."""
    return sorted(RULES.values(), key=lambda r: (len(r.id), r.id))
