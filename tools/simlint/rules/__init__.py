"""Built-in rule set.  Importing this package registers every rule."""

from tools.simlint.rules import (  # noqa: F401
    l1_assert,
    l2_l3_casts,
    l4_audit,
    l5_catch,
    l6_console,
    l7_determinism,
    l8_stats,
    l9_locks,
    l10_hot_alloc,
    l11_hot_maps,
    l12_hot_virtual,
    l13_hot_byvalue,
    l14_hot_io,
    l15_io_checked,
    l16_snapshot_complete,
    l17_page_geometry,
    l18_addr_escapes,
    l19_hot_modulo,
)
