"""Built-in rule set.  Importing this package registers every rule."""

from tools.simlint.rules import (  # noqa: F401
    l1_assert,
    l2_l3_casts,
    l4_audit,
    l5_catch,
    l6_console,
    l7_determinism,
    l8_stats,
    l9_locks,
)
