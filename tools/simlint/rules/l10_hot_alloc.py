"""L10: hot path — no per-access heap allocation."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.hotpath import analyze, hot_function_at
from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Direct allocation: new-expressions and the make_* helpers.  The
# `operator new` declarations of the MOKASIM_ALLOC_TRACE interposer
# are exempted by the SIM_COLD/escape machinery, not special-cased.
NEW_RE = re.compile(r"(?<!\boperator )\bnew\b(?!\s*\()")
NEW_PAREN_RE = re.compile(r"(?<!\boperator )\bnew\s*\(")
MAKE_RE = re.compile(r"\b(?:std\s*::\s*)?make_(?:unique|shared)\s*<")

# Growth calls on containers.  The receiver is exempt when (a) it is
# a by-reference parameter of the enclosing hot function — capacity
# is then the caller's contract — or (b) the same file reserves it.
GROW_RE = re.compile(r"\b([A-Za-z_]\w*(?:\.[A-Za-z_]\w*)*?)\s*\.\s*"
                     r"(push_back|emplace_back|resize)\s*\(")

# Container / string locals constructed per call.
LOCAL_CONTAINER_RE = re.compile(
    r"\bstd\s*::\s*(vector|deque|list|basic_string|string)\b\s*(?:<[^;{}]*>)?"
    r"\s+\w+\s*[({=;]"
)


@rule("L10", "hot path: no per-access heap allocation")
def check(project: Project) -> List[Finding]:
    """Functions reachable from a SIM_HOT root (see
    common/hot_path.h and tools/simlint/hotpath.py) run once per
    simulated memory access; a single heap allocation there costs
    more than the whole cache lookup it models and destroys the
    3-5x throughput headroom the ROADMAP targets.  Banned inside
    hot-reachable code:

    * `new` expressions, `make_unique` / `make_shared`;
    * `push_back` / `emplace_back` / `resize` on containers that are
      neither reserved in the same file nor by-reference parameters
      (whose capacity is the caller's contract);
    * construction of `std::vector` / `std::deque` / `std::list` /
      `std::string` locals or temporaries.

    Fix by hoisting the container into the owning object and
    reserving it at construction (see CoreComplex::pf_buffer_), by
    converting to a fixed-size flat array (see UpdateBuffer), or by
    arena-allocating.  The MOKASIM_ALLOC_TRACE build enforces the
    same contract dynamically: a warmed-up run must perform zero
    steady-state allocations.  Escape hatch for a justified cost:
    `LINT_HOT_OK: <why>` on or just above the line.
    """
    out: List[Finding] = []
    model = analyze(project)
    # reserve() calls are credited to the header/source pair (the
    # constructor reserving in foo.h covers growth in foo.cc).
    pair_reserved = {}
    for sf in project.src_files():
        key = (sf.path.parent, sf.path.stem)
        pair_reserved.setdefault(key, set()).update(
            re.findall(r"\b([A-Za-z_]\w*)\s*\.\s*reserve\s*\(", sf.code)
        )
    for sf in project.src_files():
        if sf.rel not in model.spans:
            continue
        code = sf.code
        reserved = pair_reserved.get((sf.path.parent, sf.path.stem), set())

        def emit(m_start: int, message: str) -> None:
            no = line_of(code, m_start)
            d = hot_function_at(model, sf, no)
            if d is None or sf.annotated(no, "LINT_HOT_OK", lookback=4):
                return
            out.append(
                Finding(
                    "L10",
                    sf.path,
                    no,
                    f"{message} in hot-reachable `{d.qual}` (per-access "
                    "path); preallocate at construction or annotate with "
                    "`LINT_HOT_OK: <why>`",
                )
            )

        for pat, msg in (
            (NEW_RE, "heap allocation (`new`)"),
            (NEW_PAREN_RE, "heap allocation (`new`)"),
            (MAKE_RE, "heap allocation (`make_unique`/`make_shared`)"),
            (LOCAL_CONTAINER_RE, "per-call container/string construction"),
        ):
            for m in pat.finditer(code):
                emit(m.start(), msg)

        for m in GROW_RE.finditer(code):
            receiver = m.group(1).split(".")[-1]
            if receiver in reserved:
                continue
            no = line_of(code, m.start())
            d = hot_function_at(model, sf, no)
            if d is None:
                continue
            if re.search(r"&\s*" + re.escape(receiver) + r"\b", d.params):
                continue  # by-ref parameter: caller owns the capacity
            emit(
                m.start(),
                f"`{receiver}.{m.group(2)}` may reallocate and `{receiver}`"
                " is never reserved in this header/source pair",
            )
    return out
