"""L11: hot path — no node-based map lookups where flat fits."""

from __future__ import annotations

import re
from typing import Dict, Set, Tuple

from tools.simlint.hotpath import analyze, hot_function_at
from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Names declared as ordered or unordered node-based associative
# containers (members, locals, parameters).
MAP_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?((?:unordered_)?(?:map|set|multimap|multiset))"
    r"\s*<[^;{}()]*?>[\s&]*(\w+)\s*[;={]"
)

IDENT_USE = r"\b{}\s*[.\[]"


def _map_names(project: Project) -> Dict[Tuple, Set[str]]:
    """Map-typed names scoped to their header/source pair, exactly
    like L7's unordered-name index: members declared in foo.h are
    visible in foo.cc and vice versa."""
    paired: Dict[Tuple, Set[str]] = {}
    for sf in project.src_files():
        key = (sf.path.parent, sf.path.stem)
        for m in MAP_DECL_RE.finditer(sf.code):
            paired.setdefault(key, set()).add(m.group(2))
    return paired


@rule("L11", "hot path: no hash/tree map traffic where flat fits")
def check(project: Project):
    """`std::unordered_map` / `std::map` on a per-access path costs a
    hash + pointer chase (or a tree walk) and a node allocation per
    insert — typically 10-50x the cost of indexing a flat array.
    Simulator structures on the hot path model fixed-capacity
    hardware (caches, TLBs, update buffers, weight tables), so a
    flat, capacity-sized array or open-addressing table almost
    always fits; see UpdateBuffer for the pattern.

    The rule flags any `.member` or `[key]` use of a map/set-typed
    name inside hot-reachable code (same header/source-pair scoping
    as L7).  When the structure genuinely wants a map — unbounded
    sparse key space touched on an amortized sub-path, like the
    radix page table behind the TLBs — annotate the declaration or
    the use with `LINT_HOT_OK: <why a flat structure does not fit>`.
    """
    out = []
    model = analyze(project)
    paired = _map_names(project)
    for sf in project.src_files():
        if sf.rel not in model.spans:
            continue
        names = paired.get((sf.path.parent, sf.path.stem), set())
        if not names:
            continue
        code = sf.code
        for name in sorted(names):
            for m in re.finditer(IDENT_USE.format(re.escape(name)), code):
                no = line_of(code, m.start())
                d = hot_function_at(model, sf, no)
                if d is None or sf.annotated(no, "LINT_HOT_OK", lookback=4):
                    continue
                out.append(
                    Finding(
                        "L11",
                        sf.path,
                        no,
                        f"map/set `{name}` used in hot-reachable "
                        f"`{d.qual}`; a flat or open-addressing "
                        "structure fits fixed-capacity hardware — or "
                        "annotate `LINT_HOT_OK: <why not>`",
                    )
                )
    return out
