"""L12: hot path — no non-devirtualizable virtual dispatch."""

from __future__ import annotations

import re
from typing import Dict, List, Set

from tools.simlint.hotpath import analyze, hot_function_at
from tools.simlint.lexer import line_of
from tools.simlint.cppparse import class_bodies
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# `class Foo final : public Bar {` — capture name, final, base list.
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(final)?\s*(?::([^{;]*))?\{"
)

# `using FooPtr = std::unique_ptr<Foo>;` — smart-pointer aliases.
ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std\s*::\s*(?:unique_ptr|shared_ptr)\s*<\s*"
    r"([A-Za-z_]\w*)\b"
)

# Member/param/local of pointer-ish type: `Foo *name`, `FooPtr name`,
# `std::unique_ptr<Foo> name`, `Foo &name`.
PTRDECL_RES = (
    re.compile(r"\b([A-Z]\w*)\s*[*&]\s*(\w+)\s*[;,=)({]"),
    re.compile(r"\bstd\s*::\s*(?:unique_ptr|shared_ptr)\s*<\s*([A-Z]\w*)\s*>"
               r"\s*(\w+)\s*[;,=)({]"),
)
ALIASDECL_RE = r"\b({})\s+(\w+)\s*[;,=)({{]"

# Dispatch through the name: `name->method(` or `name.method(`.
DISPATCH_RE = r"\b{}\s*(?:->|\.)\s*([a-z_]\w*)\s*\("

# Non-virtual utility methods never worth flagging even on a
# polymorphic receiver (defined non-virtual on the base).
_BENIGN = frozenset("get reset release swap".split())


def _class_info(project: Project):
    """name -> (is_polymorphic, is_final) for every class in src/."""
    info: Dict[str, List[bool]] = {}
    virtual_methods: Set[str] = set()
    for sf in project.src_files():
        code = sf.code
        for cls, body, _line in class_bodies(code):
            poly = bool(re.search(r"\bvirtual\b|\boverride\b", body))
            info.setdefault(cls, [False, False])
            info[cls][0] = info[cls][0] or poly
            for m in re.finditer(r"\bvirtual\b[^;{(]*?(\w+)\s*\(", body):
                virtual_methods.add(m.group(1))
        for m in CLASS_HEAD_RE.finditer(code):
            name, final = m.group(1), bool(m.group(2))
            info.setdefault(name, [False, False])
            info[name][1] = info[name][1] or final
    return info, virtual_methods


@rule("L12", "hot path: virtual dispatch must be devirtualizable")
def check(project: Project) -> List[Finding]:
    """An indirect call per simulated access defeats inlining and
    branch prediction of the simulator's innermost loop: the
    `Cache::access` -> prefetcher -> filter chain runs hundreds of
    millions of times per experiment.  GCC/Clang devirtualize a call
    through a pointer whose static type is a `final` class (or whose
    method is `final`), turning it back into a direct, inlinable
    call.

    The rule finds dispatch (`p->f(...)`, `r.f(...)`) inside
    hot-reachable code where the receiver's declared type is a
    polymorphic class that is not marked `final`, the callee is
    declared `virtual` somewhere, and flags it.  Receiver types are
    resolved from pointer/reference/smart-pointer declarations in the
    same header/source pair, including `using FooPtr =
    std::unique_ptr<Foo>` aliases.

    Fix by marking the concrete leaf class `final` (free — see
    `class Cache final`), or hoisting the virtual call out of the
    per-access loop.  Genuinely polymorphic seams that stay virtual
    by design (the configurable prefetcher/filter behind
    `PrefetcherPtr`/`FilterPtr`) carry a `LINT_HOT_OK: <why>` noting
    the indirection is the experiment's configuration point.
    """
    out: List[Finding] = []
    model = analyze(project)
    info, virtual_methods = _class_info(project)
    aliases: Dict[str, str] = {}
    for sf in project.src_files():
        for m in ALIAS_RE.finditer(sf.code):
            aliases[m.group(1)] = m.group(2)

    poly_nonfinal = {
        name for name, (poly, final) in info.items() if poly and not final
    }

    for sf in project.src_files():
        if sf.rel not in model.spans:
            continue
        code = sf.code
        # receiver name -> declared class
        recv: Dict[str, str] = {}
        for pat in PTRDECL_RES:
            for m in pat.finditer(code):
                if m.group(1) in poly_nonfinal:
                    recv[m.group(2)] = m.group(1)
        alias_names = [a for a, t in aliases.items() if t in poly_nonfinal]
        if alias_names:
            pat = re.compile(ALIASDECL_RE.format("|".join(alias_names)))
            for m in pat.finditer(code):
                recv[m.group(2)] = aliases[m.group(1)]
        if not recv:
            continue
        for name, cls in sorted(recv.items()):
            for m in re.finditer(DISPATCH_RE.format(re.escape(name)), code):
                method = m.group(1)
                if method in _BENIGN or method not in virtual_methods:
                    continue
                no = line_of(code, m.start())
                d = hot_function_at(model, sf, no)
                if d is None or sf.annotated(no, "LINT_HOT_OK", lookback=4):
                    continue
                out.append(
                    Finding(
                        "L12",
                        sf.path,
                        no,
                        f"virtual call `{name}->{method}()` on "
                        f"non-final polymorphic `{cls}` in hot-reachable "
                        f"`{d.qual}`; mark the concrete class `final` or "
                        "annotate `LINT_HOT_OK: <why>`",
                    )
                )
    return out
