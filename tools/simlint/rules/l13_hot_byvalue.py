"""L13: hot path — no by-value passing of large structs."""

from __future__ import annotations

import re
from typing import Dict, List

from tools.simlint.cppparse import class_bodies, depth0
from tools.simlint.hotpath import analyze
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# A plausible data member at class depth 0:  `Type name;` possibly
# with array suffix and initializer.
MEMBER_RE = re.compile(
    r"^\s*(?!using|typedef|static|friend|return|if|for|while|public|"
    r"private|protected|explicit|virtual|template|namespace|else|do|case)"
    r"[\w:<>,*&\s]+?[\s&*]([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*"
    r"(?:=[^;]*|\{[^;]*\})?;"
)
ARRAY_N_RE = re.compile(r"\[(\d+)\]")
STD_ARRAY_RE = re.compile(r"std\s*::\s*array\s*<[^,<>]*,\s*(\d+)\s*>")

# Parameter of form `Type name` with no & or * — by value.
BYVAL_PARAM = r"(?:^|,)\s*(?:const\s+)?({})\s+(\w+)\s*(?=,|$)"

_WORD = 8            # crude per-member size estimate, bytes
_LIMIT = 16          # two registers: the by-value sweet spot


def _struct_sizes(project: Project) -> Dict[str, int]:
    """Crude byte-size estimate per class: 8 bytes per depth-0 data
    member, arrays multiplied out, nested known structs substituted
    (one level).  An overestimate is fine — the rule only needs to
    separate two-register values from cache-line-sized records."""
    raw: Dict[str, List[str]] = {}
    for sf in project.src_files():
        for cls, body, _line in class_bodies(sf.code):
            members = []
            for stmt in depth0(body).split("\n"):
                m = MEMBER_RE.match(stmt)
                if m and "(" not in stmt.split("=")[0].split("{")[0]:
                    members.append(stmt)
            if members:
                raw.setdefault(cls, []).extend(members)

    sizes: Dict[str, int] = {}

    def size_of(stmt: str) -> int:
        n = 1
        am = ARRAY_N_RE.search(stmt)
        if am:
            n = int(am.group(1))
        sm = STD_ARRAY_RE.search(stmt)
        if sm:
            n = max(n, int(sm.group(1)))
        unit = _WORD
        for other, stmts in raw.items():
            if other in sizes and re.search(r"\b" + other + r"\b", stmt):
                unit = max(unit, sizes[other])
        return unit * n

    # Two passes give one level of nesting resolution.
    for _ in range(2):
        for cls, stmts in raw.items():
            sizes[cls] = sum(size_of(s) for s in stmts)
    return sizes


@rule("L13", "hot path: pass large structs by reference")
def check(project: Project) -> List[Finding]:
    """A by-value parameter bigger than two machine words (16 bytes)
    is copied at every call; on a per-access path that copy — often a
    whole `DecisionRecord` or `PrefetchContext` — shows up directly
    in instructions/second.  Small values (Addr, Cycle, enums,
    two-word structs) should stay by value; big records go by
    const-reference.

    Sizes are estimated structurally (8 bytes per member, arrays
    multiplied out, one level of nesting), so the rule is
    deliberately conservative about *what is big* and only fires on
    parameters of hot-reachable functions.  Fix with `const T &`; a
    deliberate by-value copy (sink argument that is moved-from)
    takes `LINT_HOT_OK: <why>`.
    """
    out: List[Finding] = []
    model = analyze(project)
    sizes = _struct_sizes(project)
    big = {name for name, sz in sizes.items() if sz > _LIMIT}
    if not big:
        return out
    pat = re.compile(BYVAL_PARAM.format("|".join(sorted(big))))
    for sf in project.src_files():
        for start, _end, d in model.hot_spans(sf):
            for m in pat.finditer(d.params):
                if sf.annotated(start, "LINT_HOT_OK", lookback=4):
                    continue
                out.append(
                    Finding(
                        "L13",
                        sf.path,
                        start,
                        f"hot-reachable `{d.qual}` takes "
                        f"`{m.group(1)} {m.group(2)}` by value "
                        f"(~{sizes[m.group(1)]}B copy per call); pass "
                        "`const &` or annotate `LINT_HOT_OK: <why>`",
                    )
                )
    return out
