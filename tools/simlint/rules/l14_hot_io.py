"""L14: hot path — no formatting or I/O."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.hotpath import analyze, hot_function_at
from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

IO_RE = re.compile(
    r"\b(?:printf|fprintf|sprintf|snprintf|vsnprintf|puts|fputs|putchar"
    r"|fwrite|fread|fopen|fclose|fflush|getline)\s*\("
    r"|\bstd\s*::\s*(?:cout|cerr|clog|to_string|format|getline"
    r"|ostringstream|istringstream|stringstream"
    r"|ofstream|ifstream|fstream)\b"
)


@rule("L14", "hot path: no formatting or I/O")
def check(project: Project) -> List[Finding]:
    """Formatting and stream I/O inside hot-reachable code costs
    microseconds per call (locale lookups, heap-backed buffers,
    syscalls) on a path budgeted in nanoseconds — and L6 already
    bans ad-hoc console output project-wide.  Anything the hot path
    wants to report must be recorded as a counter or telemetry event
    (src/telemetry/: one relaxed-atomic branch when disabled) and
    rendered off the hot path at interval/report cadence.

    The rule flags stdio calls, iostream objects, string streams and
    `std::to_string`/`std::format` inside hot-reachable functions.
    Error-path uses should instead live behind SIM_COLD helpers
    (see audit::report_failure); a line that truly must stay takes
    `LINT_HOT_OK: <why>`.
    """
    out: List[Finding] = []
    model = analyze(project)
    for sf in project.src_files():
        if sf.rel not in model.spans:
            continue
        code = sf.code
        for m in IO_RE.finditer(code):
            no = line_of(code, m.start())
            d = hot_function_at(model, sf, no)
            if d is None or sf.annotated(no, "LINT_HOT_OK", lookback=4):
                continue
            out.append(
                Finding(
                    "L14",
                    sf.path,
                    no,
                    f"formatting/IO `{m.group(0).strip()}` in "
                    f"hot-reachable `{d.qual}`; record a counter or "
                    "telemetry event instead, or annotate "
                    "`LINT_HOT_OK: <why>`",
                )
            )
    return out
