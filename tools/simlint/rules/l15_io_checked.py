"""L15: jobs I/O — check fwrite/fflush/fclose/rename results."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Calls whose return value reports the write actually landing.  The
# optional std:: prefix matches both spellings; the manual lookbehind
# in check() keeps `fs::rename` and `my_fclose` from matching.
IO_RE = re.compile(r"(?:std\s*::\s*)?\b(fwrite|fflush|fclose|rename)\s*\(")

# A call preceded by one of these characters feeds its result into an
# expression (comparison, assignment, condition, argument, boolean
# chain) — i.e. somebody is looking at it.
_CONSUMING = set("=(,&|!<>^?:+*/%-")

_WORD = re.compile(r"[A-Za-z0-9_]")


def _consumed(code: str, start: int) -> bool:
    """True when the call at ``code[start:]`` has its result used."""
    i = start - 1
    while i >= 0 and code[i].isspace():
        i -= 1
    if i < 0:
        return False
    ch = code[i]
    if ch in _CONSUMING:
        return True
    if _WORD.match(ch):
        j = i
        while j >= 0 and _WORD.match(code[j]):
            j -= 1
        return code[j + 1 : i + 1] in ("return", "co_return")
    return False  # ; { } ) — statement position, result dropped


@rule("L15", "jobs I/O: check fwrite/fflush/fclose/rename results")
def check(project: Project) -> List[Finding]:
    """The journal/lease layer under src/sim/jobs/ is the crash-safety
    boundary: sharded sweeps recover by re-reading what these files
    claim was durably written.  An fwrite/fflush/fclose/rename whose
    result is dropped turns disk-full or a torn write into silent data
    loss — exactly the faults the chaos drill injects (faults.h
    should_fail_write, tools/ci_chaos_shard.sh).

    The rule flags statement-position calls (result discarded) in any
    file under src/sim/jobs/.  Results fed into a comparison,
    assignment, condition, argument or `return` are fine.  A close
    that genuinely cannot lose data (read-only stream) takes
    `LINT_IO_OK: <why>`.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        if not sf.rel.startswith("src/sim/jobs/"):
            continue
        code = sf.code
        for m in IO_RE.finditer(code):
            if m.start() > 0 and (
                _WORD.match(code[m.start() - 1])
                or code[m.start() - 1] in ".:>"
            ):
                continue  # member/qualified/longer name, not libc's
            if _consumed(code, m.start()):
                continue
            no = line_of(code, m.start())
            if sf.annotated(no, "LINT_IO_OK"):
                continue
            out.append(
                Finding(
                    "L15",
                    sf.path,
                    no,
                    f"`{m.group(1)}` result discarded in a journal/lease "
                    "path; check it (disk-full and torn writes are "
                    "simulated here) or annotate `LINT_IO_OK: <why>`",
                )
            )
    return out
