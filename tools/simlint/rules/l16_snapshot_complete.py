"""L16: snapshot completeness — save_state must cover every member."""

from __future__ import annotations

import re
from typing import List, Optional

from tools.simlint.cppparse import balanced_braces, class_bodies, depth0
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# A class opts into the snapshot contract by declaring (or overriding)
# save_state taking a SnapshotWriter.
SAVE_DECL_RE = re.compile(r"\bsave_state\s*\(\s*(?:moka\s*::\s*)?SnapshotWriter\b")

# Lines that declare something other than a data member. Tested on
# the *stripped* line, separately from the member match, so regex
# backtracking through leading whitespace cannot skip the keyword
# check (the bug that made L8-style lookaheads leak friend/static
# declarations through).
NON_MEMBER_RE = re.compile(
    r"(?:using|typedef|friend|static|enum|struct|class"
    r"|public|private|protected|template|return|case)\b"
)

# One whole depth-0 line declaring a data member: `Type name_;` with
# an optional initializer. Per line (no spanning), so the reported
# line number is exact.
MEMBER_DECL_RE = re.compile(
    r"[\w:<>,&*\s]+?[\s&*](\w+)(?:\s*=\s*[^;]*|\s*\{[^;]*\})?\s*;$"
)


def _member_lines(body: str):
    """(name, line offset within body) of single-line data members."""
    out = []
    for off, line in enumerate(depth0(body).split("\n")):
        stripped = line.strip()
        if "(" in stripped or ")" in stripped:
            continue  # function declaration, not a data member
        if NON_MEMBER_RE.match(stripped):
            continue
        m = MEMBER_DECL_RE.fullmatch(stripped)
        if m is not None:
            out.append((m.group(1), off))
    return out


def _inline_body(body: str) -> Optional[str]:
    """save_state body when defined inside the class, else None."""
    m = SAVE_DECL_RE.search(body)
    if m is None:
        return None
    brace = body.find("{", m.end())
    semi = body.find(";", m.end())
    if brace == -1 or (semi != -1 and semi < brace):
        return None  # declaration only; defined out of line
    return balanced_braces(body, brace)


def _out_of_line_body(files, cls: str) -> Optional[str]:
    """Body of `Cls::save_state(...)` found anywhere under src/.

    Accepts an optional template argument list on the class head
    (`UpdateBuffer<AddrT>::save_state`) so templated components stay
    under the contract.
    """
    sig = re.compile(
        r"\b" + re.escape(cls) + r"\s*(?:<[^<>;{}]*>)?\s*::\s*save_state\s*\("
    )
    for sf in files:
        m = sig.search(sf.code)
        if m is None:
            continue
        brace = sf.code.find("{", m.end())
        if brace != -1:
            return balanced_braces(sf.code, brace)
    return None


@rule("L16", "snapshot completeness: save_state must serialize every member")
def check(project: Project) -> List[Finding]:
    """Every class that implements ``save_state(SnapshotWriter&)``
    must mention each of its non-static data members in that body (or
    in its out-of-line ``Cls::save_state`` definition) — whether
    serialized directly, delegated (``member->save_state(w)``), or
    folded into a helper call that names the member.

    Why: a member silently missing from save_state is exactly the bug
    the snapshot subsystem's byte-identity guarantee cannot tolerate —
    the restored run diverges from the straight-through run only under
    workloads that exercise the forgotten state, which is the worst
    possible way to find out.  Annotate a member that is deliberately
    *not* serialized (config mirrors, caches rebuilt on demand, pure
    scratch) with ``LINT_SNAPSHOT_OK: <why>`` on or just above its
    declaration.
    """
    out: List[Finding] = []
    files = project.src_files()
    for sf in files:
        for name, body, cls_line in class_bodies(sf.code):
            if SAVE_DECL_RE.search(body) is None:
                continue
            members = _member_lines(body)
            if not members:
                continue
            save_text = _inline_body(body)
            if save_text is None:
                save_text = _out_of_line_body(files, name)
            if save_text is None:
                out.append(
                    Finding(
                        "L16",
                        sf.path,
                        cls_line,
                        f"`{name}` declares save_state(SnapshotWriter&) "
                        "but no definition is visible under src/; the "
                        "snapshot contract cannot be checked",
                    )
                )
                continue
            body_line = sf.code[: sf.code.index(body)].count("\n") + 1
            for member, line_off in members:
                decl_line = body_line + line_off
                if sf.annotated(decl_line, "LINT_SNAPSHOT_OK", lookback=1):
                    continue
                if re.search(r"\b" + re.escape(member) + r"\b", save_text):
                    continue
                out.append(
                    Finding(
                        "L16",
                        sf.path,
                        decl_line,
                        f"`{name}::{member}` is not serialized by "
                        "save_state; a restored run will diverge from a "
                        "straight-through one (annotate deliberate "
                        "omissions with LINT_SNAPSHOT_OK: <why>)",
                    )
                )
    return out
