"""L17: page geometry must go through the typed helpers."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.cppparse import shift_sites
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Files allowed to spell page geometry by hand: the typed helpers
# themselves, the virtual-memory subsystem that implements the
# geometry, and the audit layer that re-derives invariants from raw
# bits on purpose (checking the helpers *with* the helpers would be
# circular).
WHITELIST = (
    "src/common/types.h",
    "src/vmem/",
    "src/audit/",
)

# Shift amounts that encode 4KB / 2MB page geometry.
GEOM_SHIFT_NAMED = re.compile(r"^\s*\(?\s*(kPageBits|kLargePageBits)\b")
GEOM_SHIFT_NUMERIC = re.compile(r"^\s*\(?\s*(12|21)\b")

# Offset masks and modulus spelled against the page size constants.
GEOM_MASK_NAMED = re.compile(
    r"(?:&\s*~?\s*\(?\s*(?:kPageSize|kLargePageSize)\s*-\s*1"
    r"|%\s*(?:kPageSize|kLargePageSize)\b)"
)
GEOM_MASK_NUMERIC = re.compile(r"&\s*~?\s*(?:0xFFF|0x1FFFFF)\b", re.IGNORECASE)

# A line talks about addresses when an address-ish identifier appears;
# bare-numeric geometry (``>> 12``, ``& 0xFFF``) is only flagged on
# such lines so that unrelated 12-bit hashing (e.g. SPP signatures)
# stays out of scope.  The named constants are unambiguous on their
# own.
ADDR_WORD = re.compile(
    r"\b\w*(?:vaddr|paddr|addr|vpn|ppn|pfn|page|frame)\w*\b", re.IGNORECASE
)

_SUGGEST = (
    "use the typed helpers (page_number/page_index/page_offset/"
    "page_addr/crosses_page and their large-page forms) or annotate "
    "with `LINT_GEOM_OK: <why>`"
)


def _whitelisted(rel: str) -> bool:
    return any(
        rel == w or (w.endswith("/") and rel.startswith(w)) for w in WHITELIST
    )


@rule("L17", "page geometry only via typed helpers")
def check(project: Project) -> List[Finding]:
    """Raw page-geometry arithmetic — ``>> kPageBits``, ``>> 12``,
    ``& (kPageSize - 1)``, ``& 0xFFF`` and their 2MB (``21`` /
    ``kLargePageBits`` / ``0x1FFFFF``) forms — is only allowed in
    ``common/types.h`` (which defines the helpers), under ``vmem/``
    (which implements the geometry), and under ``audit/`` (which
    re-derives invariants from raw bits deliberately).  Everywhere
    else, page geometry must go through the typed helpers so that the
    virtual/physical tag travels with the value.

    Why: a hand-rolled ``addr >> 12`` strips the address-space tag and
    is the exact hole through which VA/PA confusion re-enters after
    the strong-type refactor — the paper's whole subject is what
    happens at page boundaries, so the page math must be impossible to
    get wrong silently.  Shift operators are disambiguated from stream
    inserters and template closers lexically; bare-numeric forms are
    only flagged on lines that mention an address-ish identifier.
    Annotate deliberate raw geometry (bit-packing into trace formats,
    hash folding) with ``LINT_GEOM_OK: <why>``.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        if _whitelisted(sf.rel):
            continue
        for no, line in enumerate(sf.code_lines, 1):
            hits = []
            for _, op, rhs in shift_sites(line):
                if GEOM_SHIFT_NAMED.match(rhs):
                    hits.append(f"`{op} {GEOM_SHIFT_NAMED.match(rhs).group(1)}`")
                elif GEOM_SHIFT_NUMERIC.match(rhs) and ADDR_WORD.search(line):
                    hits.append(
                        f"`{op} {GEOM_SHIFT_NUMERIC.match(rhs).group(1)}`"
                    )
            if GEOM_MASK_NAMED.search(line):
                hits.append("a page-size offset mask")
            elif GEOM_MASK_NUMERIC.search(line) and ADDR_WORD.search(line):
                hits.append("a page-offset bit mask")
            if not hits:
                continue
            if sf.annotated(no, "LINT_GEOM_OK"):
                continue
            out.append(
                Finding(
                    "L17",
                    sf.path,
                    no,
                    f"raw page geometry ({', '.join(hits)}) outside the "
                    f"typed seams; {_SUGGEST}",
                )
            )
    return out
