"""L18: strong-address escape hatches only at blessed seams."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Seams where unwrapping a VirtAddr/PhysAddr back to a raw Addr is the
# point of the code:
#
# * common/types.h    — defines the types and their helpers;
# * common/hashing.h  — mixes raw bits into table indexes;
# * snapshot/         — byte-level serialization of every component;
# * vmem/             — the translation machinery IS the VA->PA seam;
# * trace/generators.cc — synthesis mints the typed virtual stream;
# * audit/            — invariant checkers re-derive structure from
#                       raw bits and print them in diagnostics.
WHITELIST = (
    "src/common/types.h",
    "src/common/hashing.h",
    "src/snapshot/",
    "src/vmem/",
    "src/trace/generators.cc",
    "src/audit/",
)

RAW_CALL = re.compile(r"\.\s*raw\s*\(\s*\)")


def _whitelisted(rel: str) -> bool:
    return any(
        rel == w or (w.endswith("/") and rel.startswith(w)) for w in WHITELIST
    )


@rule("L18", "address-type escapes only at blessed seams")
def check(project: Project) -> List[Finding]:
    """``.raw()`` — the escape hatch from ``VirtAddr`` / ``PhysAddr``
    back to an untagged ``Addr`` — may appear only at the blessed
    seams: ``common/types.h``, ``common/hashing.h``, ``snapshot/``,
    ``vmem/``, ``trace/generators.cc``, and ``audit/``.  Anywhere else
    each call must carry a ``LINT_ADDR_OK: <why>`` annotation on or
    just above the line.

    Why: the strong address types only deliver their compile-time
    VA/PA guarantee if unwrapping is rare and auditable.  A stray
    ``.raw()`` in component code reopens the untyped world — the value
    can then be re-wrapped with the wrong tag and no compiler or test
    will notice.  Keeping every escape greppable (whitelisted seam or
    explicit annotation) means the whole conversion surface of the
    simulator can be reviewed in one pass.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        if _whitelisted(sf.rel):
            continue
        for no, line in enumerate(sf.code_lines, 1):
            if not RAW_CALL.search(line):
                continue
            if sf.annotated(no, "LINT_ADDR_OK"):
                continue
            out.append(
                Finding(
                    "L18",
                    sf.path,
                    no,
                    "`.raw()` unwraps a strong address outside the "
                    "blessed seams; route through a typed helper, move "
                    "the conversion to a seam, or annotate with "
                    "`LINT_ADDR_OK: <why>`",
                )
            )
    return out
