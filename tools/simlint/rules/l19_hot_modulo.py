"""L19: hot path — no vector<bool> and no runtime-divisor modulo."""

from __future__ import annotations

import re

from tools.simlint.hotpath import analyze, hot_function_at
from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# std::vector<bool> declarations anywhere in a file with hot code.
VECBOOL_RE = re.compile(r"\b(?:std\s*::\s*)?vector\s*<\s*bool\s*>")

# `% divisor` where the divisor is a runtime value: a member (trailing
# underscore, possibly with a field access like `cfg_.entries`), a
# `.size()` call, or a plain lower-case local/parameter.  Divisors the
# compiler can strength-reduce itself -- integer literals and
# constant-style names (kFoo, FOO, Foo) -- are deliberately excluded.
RUNTIME_MOD_RE = re.compile(
    r"%\s*(?:\(\s*)?("
    r"[A-Za-z_]\w*(?:\s*\.\s*\w+|\s*->\s*\w+)*\s*\.\s*size\s*\(\s*\)"  # x.size()
    r"|\w+_\s*(?:\.\s*\w+|->\s*\w+)+"  # cfg_.entries, p_->rows
    r"|[a-z]\w*_\b"  # bare member: count_
    r"|[a-z]\w*\b(?!\s*\()"  # lower-case local, not a call
    r")"
)

# Names that look constant despite being lower-case free of underscore
# suffix would still be caught by the last alternative; filter the
# obvious constant spellings after the match instead.
CONST_NAME_RE = re.compile(r"^(?:k[A-Z]\w*|[A-Z][A-Z0-9_]*)$")


@rule("L19", "hot path: no vector<bool>, no runtime-divisor modulo")
def check(project: Project):
    """Two per-access-loop cost patterns that hide in plain sight.

    ``std::vector<bool>`` is a bit-packed proxy container: every
    element access pays a shift/mask through a proxy object, it
    cannot hand out real references or contiguous bytes, and
    auto-vectorization over it is poor.  Hot simulator state wants
    ``std::vector<std::uint8_t>`` (one byte per flag, directly
    addressable) or an explicit packed word with named bits.

    ``x % divisor`` with a *runtime* divisor compiles to an integer
    division (20-90 cycles, unpipelined) on every access.  Set and
    ring indexing on per-access paths should precompute geometry at
    construction: a mask when the count is a power of two
    (``x & (n - 1)``), a compare-wrap for ring advances
    (``if (++i == n) i = 0;``), or a shift plan like the DRAM
    channel/bank slicing.  Divisors the compiler already
    strength-reduces -- literals and ``kConstant`` spellings -- are
    not flagged.

    Flags both patterns inside hot-reachable functions (and
    ``vector<bool>`` declarations anywhere in a file pair that has
    hot-reachable code, since the container poisons every later
    access).  For a genuine non-pow2 fallback kept next to the fast
    path, or an amortized sub-path where the division cannot recur
    per access, annotate with ``LINT_HOT_OK: <why>``.
    """
    out = []
    model = analyze(project)
    # Header/source pairing as in L7/L11: a member declared in foo.h
    # is hot-relevant when foo.cc (or the header itself) has hot code.
    hot_pairs = {
        (sf.path.parent, sf.path.stem)
        for sf in project.src_files()
        if sf.rel in model.spans
    }
    for sf in project.src_files():
        code = sf.code
        if (sf.path.parent, sf.path.stem) in hot_pairs:
            for m in VECBOOL_RE.finditer(code):
                no = line_of(code, m.start())
                if sf.annotated(no, "LINT_HOT_OK", lookback=4):
                    continue
                out.append(
                    Finding(
                        "L19",
                        sf.path,
                        no,
                        "std::vector<bool> in a hot file: bit-proxy "
                        "element access on the per-access path; use "
                        "std::vector<std::uint8_t> or a packed word — "
                        "or annotate `LINT_HOT_OK: <why not>`",
                    )
                )
        if sf.rel not in model.spans:
            continue
        for m in RUNTIME_MOD_RE.finditer(code):
            divisor = m.group(1)
            if CONST_NAME_RE.match(divisor):
                continue
            no = line_of(code, m.start())
            d = hot_function_at(model, sf, no)
            if d is None or sf.annotated(no, "LINT_HOT_OK", lookback=4):
                continue
            out.append(
                Finding(
                    "L19",
                    sf.path,
                    no,
                    f"runtime-divisor `% {divisor}` in hot-reachable "
                    f"`{d.qual}` is an integer division per access; "
                    "precompute a mask/compare-wrap at construction — "
                    "or annotate `LINT_HOT_OK: <why not>`",
                )
            )
    return out
