"""L1: no raw assert / <cassert> in src/."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

ASSERT_CALL = re.compile(r"(?<![\w.])assert\s*\(")
CASSERT_INC = re.compile(r'#\s*include\s*<cassert>|#\s*include\s*"assert\.h"')


@rule("L1", "no raw assert in simulator code")
def check(project: Project) -> List[Finding]:
    """Simulator code must use SIM_REQUIRE (always-on) or SIM_AUDIT
    (audit builds) from common/check.h instead of raw assert().

    Why: release builds define NDEBUG, which compiles assert() out
    entirely — a precondition that silently stops being checked is
    worse than none, because readers trust it.  SIM_REQUIRE survives
    every build type; SIM_AUDIT is the opt-in expensive tier.

    Fix: `--fix` rewrites `#include <cassert>` to
    `#include "common/check.h"`; assert() call sites need a judgement
    call (REQUIRE vs AUDIT) and are left to the author.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        if sf.rel == "src/common/check.h":
            continue  # the one place allowed to talk about assert
        for no, line in enumerate(sf.code_lines, 1):
            if CASSERT_INC.search(line):
                out.append(
                    Finding(
                        "L1",
                        sf.path,
                        no,
                        "<cassert> include in simulator code; use "
                        '"common/check.h" (SIM_REQUIRE / SIM_AUDIT) instead',
                        replacement='#include "common/check.h"',
                    )
                )
            elif ASSERT_CALL.search(line) and "static_assert" not in line:
                out.append(
                    Finding(
                        "L1",
                        sf.path,
                        no,
                        "raw assert() is compiled out by NDEBUG; use "
                        "SIM_REQUIRE (always-on) or SIM_AUDIT (audit builds)",
                    )
                )
    return out
