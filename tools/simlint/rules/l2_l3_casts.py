"""L2/L3: narrowing casts of address-typed expressions."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.cppparse import cast_sites
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Identifier fragments that mark an expression as address-typed.
ADDR_WORD = r"(?:vaddr|paddr|addr|vpn|ppn|pc)"
ADDR_EXPR = re.compile(r"\b\w*" + ADDR_WORD + r"\w*\b", re.IGNORECASE)

NARROW_UNSIGNED = (
    r"(?:std::)?uint(?:8|16|32)_t|unsigned\s+(?:char|short|int)\b"
    r"|unsigned\b(?!\s+long)"
)
NARROW_SIGNED = (
    r"(?:std::)?int(?:8|16|32)_t(?!\d)|short\b|(?<!unsigned\s)(?<!long\s)\bint\b"
)


def _is_masked(expr: str) -> bool:
    """True when the expression is already reduced below 32 bits via a
    mask, modulo, or shift before the cast."""
    return bool(re.search(r"[&%]|>>", expr))


@rule("L2", "no truncating casts of addresses")
def check_l2(project: Project) -> List[Finding]:
    """No casts of address-typed expressions (vaddr/paddr/vpn/ppn/pc)
    to unsigned types of 32 bits or narrower.

    Why: addresses are 64 bits wide in this simulator; a 32-bit cast
    silently aliases addresses 4 GiB apart and corrupts every derived
    statistic without crashing.  Casts of expressions already
    masked/shifted into a narrow range (`&`, `%`, `>>`) are allowed.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        for no, line in enumerate(sf.code_lines, 1):
            for _, expr in cast_sites(line, NARROW_UNSIGNED):
                if ADDR_EXPR.search(expr) and not _is_masked(expr):
                    out.append(
                        Finding(
                            "L2",
                            sf.path,
                            no,
                            "cast truncates address expression "
                            f"`{expr.strip()}` to <=32 bits; mask or shift "
                            "the value first",
                        )
                    )
    return out


@rule("L3", "no narrow signed casts of addresses")
def check_l3(project: Project) -> List[Finding]:
    """No casts of address-typed expressions to narrow *signed* types.

    Why: address arithmetic is unsigned; a signed narrow cast invites
    implementation-defined wrap and sign-extension bugs when the value
    is mixed back into 64-bit arithmetic.  The same mask/shift escape
    as L2 applies.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        for no, line in enumerate(sf.code_lines, 1):
            for _, expr in cast_sites(line, NARROW_SIGNED):
                if ADDR_EXPR.search(expr) and not _is_masked(expr):
                    out.append(
                        Finding(
                            "L3",
                            sf.path,
                            no,
                            "narrow signed cast of address expression "
                            f"`{expr.strip()}`; address math must stay "
                            "unsigned",
                        )
                    )
    return out
