"""L4: stateful components must be registered with the auditor."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.cppparse import class_bodies, has_data_members, is_pure_interface
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Directories whose headers define stateful simulator components that
# the auditor is expected to cover.
AUDITED_DIRS = ("cache", "dram", "vmem", "filter")


@rule("L4", "stateful components need audit coverage")
def check(project: Project) -> List[Finding]:
    """Every stateful simulator component (a class/struct with data
    members in src/{cache,dram,vmem,filter} headers) must appear in
    src/audit/audit.cc.

    Why: the invariant auditor (src/audit/) is the safety net that
    catches state corruption close to its cause; a component it never
    visits is a component whose invariants silently rot.  Pure
    interfaces are exempt, as are names listed on a
    `LINT_AUDIT_EXEMPT: Name` line in audit.cc with a rationale.
    """
    audit = project.maybe("src/audit/audit.cc")
    audit_text = audit.raw if audit is not None else ""
    exempt = set(re.findall(r"LINT_AUDIT_EXEMPT:\s*(\w+)", audit_text))
    out: List[Finding] = []
    for sub in AUDITED_DIRS:
        subdir = project.root / "src" / sub
        if not subdir.is_dir():
            continue
        for path in sorted(subdir.glob("*.h")):
            sf = project.file(path)
            for name, body, line_no in class_bodies(sf.code):
                if not has_data_members(body):
                    continue
                if is_pure_interface(body):
                    continue
                if name in exempt:
                    continue
                if re.search(r"\b" + re.escape(name) + r"\b", audit_text):
                    continue
                out.append(
                    Finding(
                        "L4",
                        sf.path,
                        line_no,
                        f"stateful component `{name}` has no coverage in "
                        "src/audit/audit.cc; add an auditor or a "
                        f"`LINT_AUDIT_EXEMPT: {name}` line with rationale",
                    )
                )
    return out
