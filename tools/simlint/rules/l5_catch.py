"""L5: bare catch (...) must classify, not swallow."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")


@rule("L5", "no bare catch (...) without classification")
def check(project: Project) -> List[Finding]:
    """No bare `catch (...)` in src/ unless annotated with
    `LINT_CATCH_OK: <why>` on or just above the line.

    Why: swallowing an unknown exception erases the failure class the
    job engine's error taxonomy (sim/jobs/job.h) exists to preserve —
    a retried job and a poisoned job must stay distinguishable.  The
    annotation asserts the handler classifies or rethrows.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        for no, line in enumerate(sf.code_lines, 1):
            if not CATCH_ALL_RE.search(line):
                continue
            if sf.annotated(no, "LINT_CATCH_OK", lookback=1):
                continue
            out.append(
                Finding(
                    "L5",
                    sf.path,
                    no,
                    "bare `catch (...)` without classification; map the "
                    "failure to a JobErrorCode (sim/jobs/job.h) or annotate "
                    "the line with `LINT_CATCH_OK: <why>`",
                )
            )
    return out
