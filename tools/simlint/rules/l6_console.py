"""L6: no raw console output in library code."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

CONSOLE_RE = re.compile(
    r"std::cout\b|std::cerr\b"
    r"|(?<!\w)(?:std::)?printf\s*\("  # snprintf/sprintf excluded
    r"|(?<!\w)(?:std::)?puts\s*\("
    r"|(?<!\w)(?:std::)?putchar\s*\("
    r"|(?<!\w)(?:std::)?v?fprintf\s*\(\s*(?:stdout|stderr)\b"
    r"|(?<!\w)(?:std::)?fputs?\s*\([^;]*,\s*(?:stdout|stderr)\s*\)"
    r"|(?<!\w)(?:std::)?fwrite\s*\([^;]*,\s*(?:stdout|stderr)\s*\)"
)


@rule("L6", "no raw console output in library code")
def check(project: Project) -> List[Finding]:
    """No std::cout / printf / fprintf(stdout|stderr, ...) in src/
    unless annotated with `LINT_LOG_OK: <why>`.

    Why: sweep CSV goes to stdout, so stray prints corrupt
    machine-readable output; ad-hoc stderr chatter bypasses the
    telemetry subsystem (src/telemetry/) that exists for progress
    reporting.  Deliberate surfaces — the report-table printer, usage
    errors, crash/audit diagnostics — carry the annotation.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        for no, line in enumerate(sf.code_lines, 1):
            if not CONSOLE_RE.search(line):
                continue
            if sf.annotated(no, "LINT_LOG_OK", lookback=1):
                continue
            out.append(
                Finding(
                    "L6",
                    sf.path,
                    no,
                    "raw console output in library code; route progress "
                    "through src/telemetry/ or annotate a deliberate "
                    "report/diagnostic surface with `LINT_LOG_OK: <why>`",
                )
            )
    return out
