"""L7: determinism — no nondeterminism sources on result paths."""

from __future__ import annotations

import re
from typing import List, Set

from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project, SourceFile
from tools.simlint.registry import rule

# Wall clocks and entropy sources.  Any hit needs a LINT_NONDET_OK
# annotation explaining why the value never reaches a result surface.
NONDET_RE = re.compile(
    r"std\s*::\s*random_device"
    r"|(?<![\w.:])s?rand\s*\("
    r"|(?<![\w.:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\("
)

# Declarations (members, locals, parameters) and functions returning
# unordered containers.  `<...>` must not cross a declaration boundary.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>[\s&]*(\w+)\s*([;({=])"
)

# Range-based for over some sequence; the sequence part is group 2.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):([^;)]*)\)")

# Ordering keyed on pointer values: hash-order *and* address-order are
# both allocation-dependent.
PTR_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
)
HASH_PTR_RE = re.compile(r"std\s*::\s*hash\s*<[^>]*\*\s*>")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _unordered_names(project: Project):
    """Names bound to unordered containers.

    Functions *returning* unordered refs are indexed project-wide
    (they are called through headers from anywhere).  Member/local
    names are scoped to their header/source pair (same directory and
    stem): members are declared in foo.h but iterated in foo.cc, while
    an unrelated foo elsewhere reusing the name stays clean.
    """
    funcs: Set[str] = set()
    paired = {}
    for sf in project.src_files():
        key = (sf.path.parent, sf.path.stem)
        for m in UNORDERED_DECL_RE.finditer(sf.code):
            if m.group(2) == "(":
                funcs.add(m.group(1))
            else:
                paired.setdefault(key, set()).add(m.group(1))
    return funcs, paired


@rule("L7", "determinism: no clocks, rand, or unordered iteration")
def check(project: Project) -> List[Finding]:
    """Simulation results must be byte-identical run to run, and
    `--jobs N` must match serial output exactly.  Three classes of
    nondeterminism are banned in src/:

    * wall clocks and entropy (`std::random_device`, `rand`,
      `time(nullptr)`, `*_clock::now()`) — annotate deliberate timing
      sites (telemetry timestamps, watchdog deadlines) with
      `LINT_NONDET_OK: <why>` on or just above the line;
    * range-for iteration over `std::unordered_*` containers — the
      libstdc++ hash order is salt/layout-dependent, so any
      report/CSV/journal surface fed by it reorders between runs.
      Sort into a vector first, or annotate an order-independent use
      (a commutative reduction) with `LINT_ORDER_OK: <why>`;
    * pointer-valued ordering keys (`map<T*, ...>`, `set<T*>`,
      `std::hash<T*>`) — address order changes with ASLR and
      allocation history even in ordered containers.

    Why: the paper's experiments are diffed byte-for-byte across
    machines and job counts; one unordered iteration in a CSV emitter
    invalidates the comparison silently.
    """
    out: List[Finding] = []
    funcs, paired = _unordered_names(project)
    for sf in project.src_files():
        if sf.rel == "src/common/thread_annotations.h":
            continue
        unordered = funcs | paired.get((sf.path.parent, sf.path.stem), set())
        code = sf.code
        for m in NONDET_RE.finditer(code):
            no = line_of(code, m.start())
            if sf.annotated(no, "LINT_NONDET_OK", lookback=2):
                continue
            out.append(
                Finding(
                    "L7",
                    sf.path,
                    no,
                    f"nondeterminism source `{m.group(0).strip()}` in "
                    "simulator code; results must be reproducible — "
                    "annotate a deliberate timing site with "
                    "`LINT_NONDET_OK: <why>`",
                )
            )
        for m in RANGE_FOR_RE.finditer(code):
            seq_idents = set(IDENT_RE.findall(m.group(2)))
            hits = seq_idents & unordered
            if not hits:
                continue
            no = line_of(code, m.start())
            if sf.annotated(no, "LINT_ORDER_OK", lookback=2):
                continue
            out.append(
                Finding(
                    "L7",
                    sf.path,
                    no,
                    "iteration over unordered container "
                    f"`{sorted(hits)[0]}` has salt-dependent order; sort "
                    "into a vector before emitting, or annotate a "
                    "commutative use with `LINT_ORDER_OK: <why>`",
                )
            )
        for pat in (PTR_KEY_RE, HASH_PTR_RE):
            for m in pat.finditer(code):
                no = line_of(code, m.start())
                if sf.annotated(no, "LINT_ORDER_OK", lookback=2):
                    continue
                out.append(
                    Finding(
                        "L7",
                        sf.path,
                        no,
                        "pointer-valued key orders by allocation address "
                        f"(`{m.group(0).strip()}`); key on a stable id "
                        "instead",
                    )
                )
    return out
