"""L8: stats completeness — every counter is reported and resettable."""

from __future__ import annotations

import re
from typing import List, Tuple

from tools.simlint.cppparse import balanced_braces, class_bodies, depth0
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

# Depth-0 struct lines that declare data members: no parens (excludes
# methods), not a nested type / alias / static constant.
MEMBER_LINE_RE = re.compile(
    r"^\s*(?!using\b|typedef\b|friend\b|static\b|enum\b|struct\b|class\b|public\b|private\b|protected\b)"
    r"[\w:<>,\s&]+?\s+(\w+)(?:\s*=\s*[^;]*|\s*\{[^;]*\})?\s*;",
    re.MULTILINE,
)

RESET_SIG_RE = re.compile(r"(operator\-|(?<![\w~])reset)\s*\(")


def _member_names(body: str) -> List[Tuple[str, int]]:
    """(name, line offset within body) of data members at depth 0."""
    flat = depth0(body)
    out = []
    for m in MEMBER_LINE_RE.finditer(flat):
        line = flat[: m.start()].count("\n")
        if "(" in m.group(0):
            continue
        out.append((m.group(1), line))
    return out


def _reset_text(body: str) -> str:
    """Concatenated bodies of operator- / reset() defined in *body*."""
    chunks = []
    for m in RESET_SIG_RE.finditer(body):
        brace = body.find("{", m.end())
        semi = body.find(";", m.end())
        if brace == -1 or (semi != -1 and semi < brace):
            continue  # declaration only; defined out of line
        chunks.append(balanced_braces(body, brace))
    return "\n".join(chunks)


def _is_write(code: str, start: int, end: int) -> bool:
    before = code[:start].rstrip()
    if before.endswith("++") or before.endswith("--"):
        return True
    after = code[end:].lstrip()
    if after[:2] in ("++", "--", "+=", "-=", "*=", "/=", "|=", "&=", "^="):
        return True
    return after.startswith("=") and not after.startswith("==")


@rule("L8", "stats completeness: counters must be reported and reset")
def check(project: Project) -> List[Finding]:
    """Every data member of a `*Stats` struct in src/ must be

    * **reported**: read (`.member` / `->member`, not assigned) from
      code outside the struct's own definition — i.e. some dump,
      report, CSV, or metrics path actually surfaces it; and
    * **resettable**: mentioned by the struct's own `reset()` or
      `operator-` so epoch deltas and warmup resets cover it.

    Why: a counter that is incremented but never surfaced is a
    silent lie — readers assume "we measure this"; one missing from
    `operator-` corrupts every epoch-delta series that subtracts
    snapshots.  Annotate a deliberate internal-only member with
    `LINT_STATS_OK: <why>` on or just above its declaration.
    """
    out: List[Finding] = []
    files = project.src_files()
    for sf in files:
        for name, body, struct_line in class_bodies(sf.code):
            if not name.endswith("Stats"):
                continue
            members = _member_names(body)
            if not members:
                continue
            reset_text = _reset_text(body)
            body_at = sf.code.index(body)
            body_span = (body_at, body_at + len(body))
            body_line = sf.code[:body_at].count("\n") + 1
            if not reset_text:
                out.append(
                    Finding(
                        "L8",
                        sf.path,
                        struct_line,
                        f"`{name}` has no reset() or operator-; epoch "
                        "deltas and warmup resets cannot cover its "
                        "counters",
                    )
                )
            for member, line_off in members:
                decl_line = body_line + line_off
                if sf.annotated(decl_line, "LINT_STATS_OK", lookback=1):
                    continue
                if reset_text and not re.search(
                    r"\b" + re.escape(member) + r"\b", reset_text
                ):
                    out.append(
                        Finding(
                            "L8",
                            sf.path,
                            decl_line,
                            f"counter `{name}::{member}` is missing from "
                            "reset()/operator-; epoch deltas will carry "
                            "stale values",
                        )
                    )
                if not _has_outside_read(files, member, sf, body_span):
                    out.append(
                        Finding(
                            "L8",
                            sf.path,
                            decl_line,
                            f"counter `{name}::{member}` is never read by "
                            "any report path; surface it (report table, "
                            "telemetry column, CSV) or delete it",
                        )
                    )
    return out


def _has_outside_read(files, member: str, owner, body_span) -> bool:
    ref = re.compile(r"(?:\.|->)\s*" + re.escape(member) + r"\b")
    for sf in files:
        code = sf.code
        for m in ref.finditer(code):
            if sf.path == owner.path and body_span[0] <= m.start() < body_span[1]:
                continue
            if _is_write(code, m.start(), m.end()):
                continue
            return True
    return False
