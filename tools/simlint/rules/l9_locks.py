"""L9: concurrency — annotated mutexes only."""

from __future__ import annotations

import re
from typing import List

from tools.simlint.lexer import line_of
from tools.simlint.model import Finding, Project
from tools.simlint.registry import rule

ANNOT_HEADER = "src/common/thread_annotations.h"

BARE_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
)
STD_LOCK_RE = re.compile(r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock)\b")
SIMMUTEX_MEMBER_RE = re.compile(r"\bSimMutex\s+(\w+)\s*;")


@rule("L9", "mutexes must carry thread-safety annotations")
def check(project: Project) -> List[Finding]:
    """All locking in src/ goes through common/thread_annotations.h:

    * no bare `std::mutex` (or recursive/shared/timed variants) —
      declare a `SimMutex`, whose SIM_CAPABILITY annotation lets
      Clang's -Wthread-safety analysis see it;
    * no `std::lock_guard` / `unique_lock` / `scoped_lock` — those are
      invisible to the analysis; use `SimMutexLock`;
    * every `SimMutex` member must actually guard something: the same
      file must name it in a SIM_GUARDED_BY / SIM_REQUIRES /
      SIM_ACQUIRE / SIM_EXCLUDES annotation, otherwise the analysis
      run in CI is checking nothing.

    Why: the container used for local builds has no clang, so the
    -Wthread-safety CI leg is the only machine check of lock
    discipline — this rule keeps code structured so that leg stays
    meaningful.  Escape hatch: `LINT_MUTEX_OK: <why>` on or just
    above the line.
    """
    out: List[Finding] = []
    for sf in project.src_files():
        if sf.rel == ANNOT_HEADER:
            continue
        code = sf.code
        for m in BARE_MUTEX_RE.finditer(code):
            no = line_of(code, m.start())
            if sf.annotated(no, "LINT_MUTEX_OK", lookback=1):
                continue
            out.append(
                Finding(
                    "L9",
                    sf.path,
                    no,
                    f"bare `{m.group(0)}` is invisible to thread-safety "
                    "analysis; use SimMutex from "
                    '"common/thread_annotations.h"',
                )
            )
        for m in STD_LOCK_RE.finditer(code):
            no = line_of(code, m.start())
            if sf.annotated(no, "LINT_MUTEX_OK", lookback=1):
                continue
            out.append(
                Finding(
                    "L9",
                    sf.path,
                    no,
                    f"`{m.group(0)}` is invisible to thread-safety "
                    "analysis; use SimMutexLock",
                )
            )
        for m in SIMMUTEX_MEMBER_RE.finditer(code):
            name = m.group(1)
            no = line_of(code, m.start())
            guarded = re.search(
                r"SIM_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES)"
                r"\s*\(\s*" + re.escape(name) + r"\s*\)",
                code,
            )
            if guarded or sf.annotated(no, "LINT_MUTEX_OK", lookback=1):
                continue
            out.append(
                Finding(
                    "L9",
                    sf.path,
                    no,
                    f"SimMutex `{name}` guards nothing: no "
                    "SIM_GUARDED_BY/SIM_REQUIRES/SIM_EXCLUDES in this "
                    "file names it, so the -Wthread-safety CI leg "
                    "checks nothing here",
                )
            )
    return out
