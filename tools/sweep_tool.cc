/**
 * @file
 * sweep_tool — batch experiment driver. Runs a workload sample
 * against a scheme list and streams one CSV row per (workload,
 * scheme) to stdout, ready for pandas/gnuplot. This is the
 * plot-your-own-figures companion to the fixed bench/ harnesses.
 *
 * Usage:
 *   sweep_tool [--workloads N] [--insts N] [--warmup N]
 *              [--prefetcher berti|ipcp|bop|stride|nl]
 *              [--schemes discard,permit,dripper,...]
 *              [--unseen] [--large-pages F]
 *
 * Example:
 *   sweep_tool --workloads 32 --schemes discard,permit,dripper \
 *       > results.csv
 */
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "filter/policies.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "trace/suites.h"

using namespace moka;

namespace {

SchemeConfig
parse_scheme(const std::string &s, L1dPrefetcherKind kind)
{
    if (s == "permit") return scheme_permit();
    if (s == "discard-ptw") return scheme_discard_ptw();
    if (s == "iso") return scheme_iso_storage();
    if (s == "ppf") return scheme_ppf(false);
    if (s == "ppf-dthr") return scheme_ppf(true);
    if (s == "dripper") return scheme_dripper(kind);
    if (s == "dripper-sf") return scheme_dripper_sf(kind);
    if (s == "dripper-meta") return scheme_dripper_specialized(kind);
    if (s == "dripper-2mb") return scheme_dripper_filter_2mb(kind);
    return scheme_discard();
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::size_t workloads = 24;
    RunConfig run;
    std::string pf_name = "berti";
    std::string schemes_arg = "discard,permit,dripper";
    bool unseen = false;
    double large_pages = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--workloads") workloads = std::stoull(next());
        else if (a == "--insts") run.measure_insts = std::stoull(next());
        else if (a == "--warmup") run.warmup_insts = std::stoull(next());
        else if (a == "--prefetcher") pf_name = next();
        else if (a == "--schemes") schemes_arg = next();
        else if (a == "--unseen") unseen = true;
        else if (a == "--large-pages") large_pages = std::stod(next());
        else {
            std::cerr << "unknown flag " << a << "\n";
            return 1;
        }
    }

    const L1dPrefetcherKind kind = parse_l1d_kind(pf_name);
    const auto roster =
        sample(unseen ? unseen_workloads() : seen_workloads(), workloads);

    std::cout << csv_header() << '\n';
    for (const std::string &scheme_name : split(schemes_arg, ',')) {
        const SchemeConfig scheme = parse_scheme(scheme_name, kind);
        for (const WorkloadSpec &spec : roster) {
            MachineConfig cfg = make_config(kind, scheme);
            cfg.vmem.large_page_fraction = large_pages;
            ResultRow row;
            row.workload = spec.name;
            row.suite = spec.suite;
            row.scheme = scheme.name;
            row.prefetcher = pf_name;
            row.metrics = run_single(cfg, spec, run);
            std::cout << to_csv(row) << '\n';
            std::cout.flush();
        }
    }
    return 0;
}
