/**
 * @file
 * sweep_tool — batch experiment driver on the fault-tolerant job
 * engine. Runs the (workload, scheme) matrix for one prefetcher and
 * streams one CSV row per completed job to stdout in job-id order,
 * ready for pandas/gnuplot; failures are classified and reported to
 * stderr instead of killing the sweep.
 *
 * Usage:
 *   sweep_tool [--workloads N] [--insts N] [--warmup N]
 *              [--prefetcher berti|ipcp|bop|stride|nl]
 *              [--schemes discard,permit,dripper,...]
 *              [--unseen] [--large-pages F]
 *              [--jobs N] [--journal FILE] [--resume FILE]
 *              [--fail-fast] [--inject-faults RATE] [--fault-seed N]
 *              [--shard-dir DIR] [--shard-name NAME] [--lease-ttl MS]
 *              [--merge] [--inject-kill RATE]
 *              [--telemetry-dir DIR] [--trace-events FILE]
 *              [--snapshot-dir DIR] [--no-snapshot-reuse]
 *
 * Example:
 *   sweep_tool --workloads 32 --schemes discard,permit,dripper \
 *       --jobs 8 --journal sweep.jsonl > results.csv
 *
 * The CSV is byte-identical for any --jobs count, and a sweep resumed
 * from its journal reproduces the uninterrupted output exactly.
 *
 * Multi-process sweeps: launch N processes with identical matrix
 * flags and the same --shard-dir; each claims jobs via leases, and
 * dead shards are recovered by the survivors (sim/jobs/shard.h).
 * Afterwards, `sweep_tool <same flags> --shard-dir D --merge` emits
 * the CSV a single-process run would have produced, byte-identical.
 *
 * Warmup reuse: with --snapshot-dir, every job that warms up the same
 * (workload, machine config, warmup budget) key shares one warmup via
 * a snapshot cache in that directory; results stay byte-identical to
 * a cold sweep (see snapshot/cache.h). --no-snapshot-reuse forces
 * cold warmups even when a directory is given.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "telemetry/telemetry.h"
#include "trace/suites.h"

using namespace moka;

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args;
    std::string pf_name = "berti";
    std::string schemes_arg = "discard,permit,dripper";
    bool unseen = false;
    double large_pages = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() { return require_value(a, i, argc, argv); };
        if (a == "--workloads") {
            args.workloads = require_u64(a, next());
        } else if (a == "--insts") {
            args.run.measure_insts = require_u64(a, next());
        } else if (a == "--warmup") {
            args.run.warmup_insts = require_u64(a, next());
        } else if (a == "--prefetcher") {
            pf_name = next();
        } else if (a == "--schemes") {
            schemes_arg = next();
        } else if (a == "--unseen") {
            unseen = true;
        } else if (a == "--large-pages") {
            large_pages = require_double(a, next());
        } else if (a == "--jobs") {
            args.jobs = require_u64(a, next());
        } else if (a == "--journal") {
            args.journal = next();
        } else if (a == "--resume") {
            args.resume = next();
        } else if (a == "--fail-fast") {
            args.fail_fast = true;
        } else if (a == "--inject-faults") {
            args.fault_rate = require_double(a, next());
        } else if (a == "--fault-seed") {
            args.fault_seed = require_u64(a, next());
        } else if (a == "--shard-dir") {
            args.shard_dir = next();
        } else if (a == "--shard-name") {
            args.shard_name = next();
        } else if (a == "--lease-ttl") {
            args.lease_ttl_ms = require_u64(a, next());
        } else if (a == "--merge") {
            args.merge = true;
        } else if (a == "--inject-kill") {
            args.kill_rate = require_double(a, next());
        } else if (a == "--telemetry-dir") {
            args.telemetry_dir = next();
        } else if (a == "--trace-events") {
            args.trace_events = next();
        } else if (a == "--snapshot-dir") {
            args.snapshot_dir = next();
        } else if (a == "--no-snapshot-reuse") {
            args.no_snapshot_reuse = true;
        } else {
            std::fprintf(stderr, "usage: unknown flag %s\n", a.c_str());
            return 2;
        }
    }

    // Validate names up front: a typo is a usage error, not a sweep
    // of uniformly failed jobs.
    const std::vector<std::string> schemes = split(schemes_arg, ',');
    const std::vector<std::string> &known = known_scheme_names();
    for (const std::string &name : schemes) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::fprintf(stderr, "usage: unknown scheme '%s' (known:",
                         name.c_str());
            for (const std::string &k : known) {
                std::fprintf(stderr, " %s", k.c_str());
            }
            std::fprintf(stderr, ")\n");
            return 2;
        }
    }
    const std::vector<std::string> &pfs = known_prefetcher_names();
    if (std::find(pfs.begin(), pfs.end(), pf_name) == pfs.end()) {
        std::fprintf(stderr, "usage: unknown prefetcher '%s' (known:",
                     pf_name.c_str());
        for (const std::string &k : pfs) {
            std::fprintf(stderr, " %s", k.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
    }
    try {
        const std::vector<WorkloadSpec> roster = sample(
            unseen ? unseen_workloads() : seen_workloads(), args.workloads);
        const std::vector<JobSpec> matrix =
            make_matrix(roster, schemes, {pf_name}, args.run, large_pages);
        const std::unique_ptr<TelemetrySession> telemetry =
            make_telemetry(args);
        const EngineReport report =
            run_matrix(matrix, args, telemetry.get());

        std::printf("%s\n", csv_header().c_str());
        for (const JobResult &res : report.results) {
            if (res.status == JobStatus::kCompleted && !res.csv.empty()) {
                std::printf("%s\n", res.csv.c_str());
            }
        }
        std::fflush(stdout);
        std::fputs(report.summary().c_str(), stderr);
        if (telemetry != nullptr) {
            const std::string trace = telemetry->flush();
            if (!trace.empty()) {
                std::fprintf(stderr, "trace events written to %s\n",
                             trace.c_str());
            }
        }
        return report.all_completed() ? 0 : 1;
    } catch (const JobError &e) {
        std::fprintf(stderr, "usage: %s: %s\n", to_string(e.code()),
                     e.what());
        return 2;
    }
}
