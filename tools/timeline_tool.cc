/**
 * @file
 * timeline_tool — merge Chrome trace_event JSON files produced by
 * separate mokasim runs (sweep_tool, fig19_multicore, mokasim_cli
 * --trace-events) into one file loadable in chrome://tracing or
 * Perfetto.
 *
 * Each input is the one-event-per-line format Tracer::write_json
 * emits, so merging is line-wise: no general JSON parser needed. To
 * keep runs visually distinct, every input after the first has its
 * process ids rebased past the previous inputs' maximum, so e.g. two
 * sweeps' "job-engine" processes (both pid 1 in their own files) land
 * on separate tracks instead of interleaving.
 *
 * Usage:
 *   timeline_tool -o merged.json run1.trace.json run2.trace.json ...
 *   timeline_tool sweep.trace.json > merged.json
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

struct Line
{
    std::string text;      //!< event JSON, no trailing comma/newline
    std::uint64_t ts = 0;  //!< sort key
    bool metadata = false; //!< 'M' events sort before everything
};

/** Parse the first unsigned integer following @p key, or @p fallback. */
std::uint64_t
field_u64(const std::string &line, const char *key, std::uint64_t fallback)
{
    const std::size_t at = line.find(key);
    if (at == std::string::npos) {
        return fallback;
    }
    return std::strtoull(line.c_str() + at + std::strlen(key), nullptr, 10);
}

/** Rewrite `"pid":N` to `"pid":N+delta` in place; returns new pid. */
std::uint64_t
rebase_pid(std::string &line, std::uint64_t delta)
{
    const std::size_t at = line.find("\"pid\":");
    if (at == std::string::npos) {
        return 0;
    }
    const std::size_t start = at + 6;
    std::size_t end = start;
    while (end < line.size() && line[end] >= '0' && line[end] <= '9') {
        ++end;
    }
    const std::uint64_t pid =
        std::strtoull(line.substr(start, end - start).c_str(), nullptr, 10) +
        delta;
    line.replace(start, end - start, std::to_string(pid));
    return pid;
}

bool
load_file(const std::string &path, std::uint64_t pid_delta,
          std::uint64_t &max_pid, std::vector<Line> &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "timeline_tool: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::string raw;
    while (std::getline(is, raw)) {
        // Strip the container lines and the per-event trailing comma.
        if (raw.rfind("{\"traceEvents\":[", 0) == 0 || raw == "]}" ||
            raw.empty()) {
            continue;
        }
        if (!raw.empty() && raw.back() == ',') {
            raw.pop_back();
        }
        if (raw.empty() || raw.front() != '{') {
            continue;  // tolerate stray non-event lines
        }
        Line line;
        line.text = std::move(raw);
        line.ts = field_u64(line.text, "\"ts\":", 0);
        line.metadata = line.text.find("\"ph\":\"M\"") != std::string::npos;
        max_pid = std::max(max_pid, rebase_pid(line.text, pid_delta));
        out.push_back(std::move(line));
        raw.clear();
    }
    return true;
}

void
write_merged(std::ostream &os, std::vector<Line> &lines)
{
    std::stable_sort(lines.begin(), lines.end(),
                     [](const Line &a, const Line &b) {
                         if (a.metadata != b.metadata) {
                             return a.metadata;
                         }
                         return a.ts < b.ts;
                     });
    os << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        os << lines[i].text << (i + 1 == lines.size() ? "" : ",") << "\n";
    }
    os << "]}\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-o" || a == "--output") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "timeline_tool: %s needs a value\n",
                             a.c_str());
                return 2;
            }
            out_path = argv[++i];
        } else if (a == "-h" || a == "--help") {
            std::fprintf(stderr,
                         "usage: timeline_tool [-o OUT] TRACE.json...\n");
            return 0;
        } else {
            inputs.push_back(a);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "usage: timeline_tool [-o OUT] TRACE.json...\n");
        return 2;
    }

    std::vector<Line> lines;
    std::uint64_t next_base = 0;
    for (const std::string &path : inputs) {
        const std::uint64_t delta = next_base;
        std::uint64_t max_pid = 0;
        if (!load_file(path, delta, max_pid, lines)) {
            return 1;
        }
        next_base = max_pid + 1;
    }

    if (out_path.empty()) {
        write_merged(std::cout, lines);
    } else {
        std::ofstream os(out_path);
        if (!os) {
            std::fprintf(stderr, "timeline_tool: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        write_merged(os, lines);
        std::fprintf(stderr, "timeline_tool: %zu events -> %s\n",
                     lines.size(), out_path.c_str());
    }
    return 0;
}
