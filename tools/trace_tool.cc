/**
 * @file
 * trace_tool — record roster workloads into the binary trace format
 * and inspect trace files.
 *
 * Usage:
 *   trace_tool record <workload-name> <out.trc> [count]
 *   trace_tool info <file.trc>
 *   trace_tool dump <file.trc> [n]     # print the first n records
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/suites.h"
#include "trace/trace_io.h"

using namespace moka;

namespace {

const char *
op_name(OpClass op)
{
    switch (op) {
      case OpClass::kAlu:    return "alu";
      case OpClass::kLoad:   return "load";
      case OpClass::kStore:  return "store";
      case OpClass::kBranch: return "branch";
    }
    return "?";
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool record|info|dump ... "
                             "(see file header)\n");
        return 1;
    }
    const std::string cmd = argv[1];

    if (cmd == "record") {
        if (argc < 4) {
            std::fprintf(stderr, "record needs <workload> <out.trc>\n");
            return 1;
        }
        const std::string name = argv[2];
        const std::string path = argv[3];
        const std::uint64_t count =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1'000'000;
        for (const WorkloadSpec &spec : seen_workloads()) {
            if (spec.name == name) {
                WorkloadPtr w = make_workload(spec);
                if (!record_trace(path, *w, count)) {
                    std::fprintf(stderr, "write failed: %s\n",
                                 path.c_str());
                    return 1;
                }
                std::printf("recorded %llu instructions of %s to %s\n",
                            (unsigned long long)count, name.c_str(),
                            path.c_str());
                return 0;
            }
        }
        std::fprintf(stderr, "unknown workload %s\n", name.c_str());
        return 1;
    }

    if (cmd == "info" || cmd == "dump") {
        WorkloadPtr t = open_trace(argv[2]);
        if (t == nullptr) {
            std::fprintf(stderr, "cannot load %s\n", argv[2]);
            return 1;
        }
        auto *trace = static_cast<TraceFileWorkload *>(t.get());
        std::printf("%s: %llu instructions/pass\n", argv[2],
                    (unsigned long long)trace->length());
        if (cmd == "dump") {
            const std::uint64_t n =
                argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16;
            for (std::uint64_t i = 0; i < n && i < trace->length(); ++i) {
                const TraceInst inst = trace->next();
                std::printf("%6llu  pc=%#llx  %-6s", (unsigned long long)i,
                            (unsigned long long)inst.pc,
                            op_name(inst.op));
                if (inst.op == OpClass::kLoad ||
                    inst.op == OpClass::kStore) {
                    std::printf("  addr=%#llx%s",
                                (unsigned long long)inst.mem_addr.raw(),
                                inst.dep_load ? " (dep)" : "");
                } else if (inst.op == OpClass::kBranch) {
                    std::printf("  %s -> %#llx",
                                inst.taken ? "taken" : "not-taken",
                                (unsigned long long)inst.target);
                }
                std::printf("\n");
            }
        }
        return 0;
    }

    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    return 1;
}
